// Unit tests for the local schedulers (fork, FCFS, EASY backfill,
// reservations), the queue-wait predictors, and the information service.
#include <gtest/gtest.h>

#include <vector>

#include "sched/batch.hpp"
#include "sched/fork.hpp"
#include "sched/infoservice.hpp"
#include "sched/predict.hpp"
#include "sched/reservation.hpp"
#include "simkit/rng.hpp"

namespace grid::sched {
namespace {

JobDescriptor job(JobId id, std::int32_t count, sim::Time runtime = 0,
                  sim::Time estimate = 0) {
  JobDescriptor d;
  d.id = id;
  d.count = count;
  d.runtime = runtime;
  d.estimated_runtime = estimate;
  return d;
}

struct Events {
  std::vector<JobId> started;
  std::vector<std::pair<JobId, EndReason>> ended;

  LocalScheduler::StartFn on_start() {
    return [this](JobId id) { started.push_back(id); };
  }
  LocalScheduler::EndFn on_end() {
    return [this](JobId id, EndReason r) { ended.emplace_back(id, r); };
  }
};

// ---- fork -----------------------------------------------------------------

TEST(ForkScheduler, StartsAfterPerProcessCost) {
  sim::Engine e;
  ForkScheduler s(e, sim::kMillisecond);
  Events ev;
  ASSERT_TRUE(s.submit(job(1, 64), ev.on_start(), ev.on_end()).is_ok());
  e.run();
  ASSERT_EQ(ev.started.size(), 1u);
  EXPECT_EQ(e.now(), 64 * sim::kMillisecond);
  EXPECT_EQ(s.busy_processors(), 64);
}

TEST(ForkScheduler, SelfCompletesWithRuntime) {
  sim::Engine e;
  ForkScheduler s(e, sim::kMillisecond);
  Events ev;
  s.submit(job(1, 2, 5 * sim::kSecond), ev.on_start(), ev.on_end());
  e.run();
  ASSERT_EQ(ev.ended.size(), 1u);
  EXPECT_EQ(ev.ended[0].second, EndReason::kCompleted);
  EXPECT_EQ(e.now(), 2 * sim::kMillisecond + 5 * sim::kSecond);
  EXPECT_EQ(s.busy_processors(), 0);
}

TEST(ForkScheduler, ExternallyCompleted) {
  sim::Engine e;
  ForkScheduler s(e, 0);
  Events ev;
  s.submit(job(1, 4), ev.on_start(), ev.on_end());
  e.run();
  EXPECT_EQ(s.busy_processors(), 4);
  s.complete(1);
  EXPECT_EQ(s.busy_processors(), 0);
  ASSERT_EQ(ev.ended.size(), 1u);
}

TEST(ForkScheduler, WallTimeKills) {
  sim::Engine e;
  ForkScheduler s(e, 0);
  Events ev;
  JobDescriptor d = job(1, 1);
  d.max_wall_time = sim::kSecond;
  s.submit(d, ev.on_start(), ev.on_end());
  e.run();
  ASSERT_EQ(ev.ended.size(), 1u);
  EXPECT_EQ(ev.ended[0].second, EndReason::kWallTimeExceeded);
}

TEST(ForkScheduler, CancelBeforeStart) {
  sim::Engine e;
  ForkScheduler s(e, sim::kSecond);
  Events ev;
  s.submit(job(1, 10), ev.on_start(), ev.on_end());
  EXPECT_TRUE(s.cancel(1));
  e.run();
  EXPECT_TRUE(ev.started.empty());
  ASSERT_EQ(ev.ended.size(), 1u);
  EXPECT_EQ(ev.ended[0].second, EndReason::kCancelled);
}

TEST(ForkScheduler, RejectsBadDescriptors) {
  sim::Engine e;
  ForkScheduler s(e, 0);
  Events ev;
  EXPECT_FALSE(s.submit(job(1, 0), ev.on_start(), ev.on_end()).is_ok());
  ASSERT_TRUE(s.submit(job(2, 1), ev.on_start(), ev.on_end()).is_ok());
  EXPECT_FALSE(s.submit(job(2, 1), ev.on_start(), ev.on_end()).is_ok());
}

// ---- FCFS batch ----------------------------------------------------------------

TEST(BatchScheduler, RunsJobsFcfsWithinCapacity) {
  sim::Engine e;
  BatchScheduler s(e, 10);
  Events ev;
  s.submit(job(1, 6, 10 * sim::kSecond), ev.on_start(), ev.on_end());
  s.submit(job(2, 6, 10 * sim::kSecond), ev.on_start(), ev.on_end());
  s.submit(job(3, 4, 10 * sim::kSecond), ev.on_start(), ev.on_end());
  // Job 1 starts immediately; job 2 does not fit; FCFS blocks job 3 too.
  EXPECT_EQ(ev.started, (std::vector<JobId>{1}));
  EXPECT_EQ(s.queue_length(), 2u);
  e.run();
  // When job 1 ends, jobs 2 and 3 both fit (6 + 4 = 10) and start together.
  EXPECT_EQ(ev.started, (std::vector<JobId>{1, 2, 3}));
  EXPECT_EQ(e.now(), 20 * sim::kSecond);
}

TEST(BatchScheduler, RejectsOversizedJob) {
  sim::Engine e;
  BatchScheduler s(e, 8);
  Events ev;
  EXPECT_EQ(s.submit(job(1, 9), ev.on_start(), ev.on_end()).code(),
            util::ErrorCode::kResourceExhausted);
}

TEST(BatchScheduler, CancelQueuedUnblocksSuccessors) {
  sim::Engine e;
  BatchScheduler s(e, 10);
  Events ev;
  s.submit(job(1, 10, 10 * sim::kSecond), ev.on_start(), ev.on_end());
  s.submit(job(2, 10, 10 * sim::kSecond), ev.on_start(), ev.on_end());
  EXPECT_TRUE(s.cancel(2));
  e.run();
  EXPECT_EQ(ev.started, (std::vector<JobId>{1}));
  EXPECT_EQ(ev.ended.size(), 2u);
}

TEST(BatchScheduler, CancelRunningFreesProcessors) {
  sim::Engine e;
  BatchScheduler s(e, 10);
  Events ev;
  s.submit(job(1, 10), ev.on_start(), ev.on_end());
  s.submit(job(2, 10, sim::kSecond), ev.on_start(), ev.on_end());
  EXPECT_TRUE(s.cancel(1));
  e.run();
  EXPECT_EQ(ev.started, (std::vector<JobId>{1, 2}));
}

TEST(BatchScheduler, WallTimeEndsJob) {
  sim::Engine e;
  BatchScheduler s(e, 4);
  Events ev;
  JobDescriptor d = job(1, 4);
  d.max_wall_time = 2 * sim::kSecond;
  s.submit(d, ev.on_start(), ev.on_end());
  e.run();
  ASSERT_EQ(ev.ended.size(), 1u);
  EXPECT_EQ(ev.ended[0].second, EndReason::kWallTimeExceeded);
  EXPECT_EQ(s.busy_processors(), 0);
}

TEST(BatchScheduler, SnapshotReflectsQueue) {
  sim::Engine e;
  BatchScheduler s(e, 4);
  Events ev;
  s.submit(job(1, 4, 10 * sim::kSecond), ev.on_start(), ev.on_end());
  s.submit(job(2, 2, 5 * sim::kSecond, 5 * sim::kSecond), ev.on_start(),
           ev.on_end());
  const QueueSnapshot snap = s.snapshot();
  EXPECT_EQ(snap.total_processors, 4);
  EXPECT_EQ(snap.busy_processors, 4);
  ASSERT_EQ(snap.queued.size(), 1u);
  EXPECT_EQ(snap.queued[0].id, 2u);
  EXPECT_EQ(snap.queued_work(), 2 * 5 * sim::kSecond);
}

TEST(BatchScheduler, RecordsWaitHistory) {
  sim::Engine e;
  BatchScheduler s(e, 4);
  Events ev;
  s.submit(job(1, 4, 10 * sim::kSecond), ev.on_start(), ev.on_end());
  s.submit(job(2, 4, sim::kSecond), ev.on_start(), ev.on_end());
  e.run();
  ASSERT_EQ(s.wait_history().size(), 2u);
  EXPECT_EQ(s.wait_history()[0].started_at - s.wait_history()[0].submitted_at,
            0);
  EXPECT_EQ(s.wait_history()[1].started_at - s.wait_history()[1].submitted_at,
            10 * sim::kSecond);
}

// ---- EASY backfill ---------------------------------------------------------------

TEST(Backfill, SmallJobJumpsQueueWithoutDelayingHead) {
  sim::Engine e;
  BatchScheduler s(e, 10, Backfill::kEasy);
  Events ev;
  // Job 1 occupies 8 for 10 s.  Job 2 (head, needs 10) must wait for it.
  // Job 3 needs 2 for 5 s: fits now and ends before the shadow time.
  s.submit(job(1, 8, 10 * sim::kSecond, 10 * sim::kSecond), ev.on_start(),
           ev.on_end());
  s.submit(job(2, 10, 10 * sim::kSecond, 10 * sim::kSecond), ev.on_start(),
           ev.on_end());
  s.submit(job(3, 2, 5 * sim::kSecond, 5 * sim::kSecond), ev.on_start(),
           ev.on_end());
  EXPECT_EQ(ev.started, (std::vector<JobId>{1, 3}));  // 3 backfilled
  e.run();
  EXPECT_EQ(ev.started, (std::vector<JobId>{1, 3, 2}));
  // Head job 2 started exactly at the shadow time (10 s), not delayed.
  EXPECT_EQ(e.now(), 20 * sim::kSecond);
}

TEST(Backfill, LongJobDoesNotDelayHead) {
  sim::Engine e;
  BatchScheduler s(e, 10, Backfill::kEasy);
  Events ev;
  s.submit(job(1, 8, 10 * sim::kSecond, 10 * sim::kSecond), ev.on_start(),
           ev.on_end());
  s.submit(job(2, 10, sim::kSecond, sim::kSecond), ev.on_start(), ev.on_end());
  // Job 3 fits now but would run past the shadow time and does not fit in
  // the head job's spare processors (10 - 10 = 0): must NOT backfill.
  s.submit(job(3, 2, 60 * sim::kSecond, 60 * sim::kSecond), ev.on_start(),
           ev.on_end());
  EXPECT_EQ(ev.started, (std::vector<JobId>{1}));
  e.run();
  EXPECT_EQ(ev.started, (std::vector<JobId>{1, 2, 3}));
}

TEST(Backfill, UsesSpareProcessorsForLongJobs) {
  sim::Engine e;
  BatchScheduler s(e, 10, Backfill::kEasy);
  Events ev;
  s.submit(job(1, 8, 10 * sim::kSecond, 10 * sim::kSecond), ev.on_start(),
           ev.on_end());
  s.submit(job(2, 6, sim::kSecond, sim::kSecond), ev.on_start(), ev.on_end());
  // Head (job 2, needs 6) will start at t=10 with 4 spare processors.
  // Job 3 (2 procs, long) fits in the spare set: backfills immediately.
  s.submit(job(3, 2, 60 * sim::kSecond, 60 * sim::kSecond), ev.on_start(),
           ev.on_end());
  EXPECT_EQ(ev.started, (std::vector<JobId>{1, 3}));
}

TEST(Backfill, FcfsNeverBackfills) {
  sim::Engine e;
  BatchScheduler s(e, 10, Backfill::kNone);
  Events ev;
  s.submit(job(1, 8, 10 * sim::kSecond, 10 * sim::kSecond), ev.on_start(),
           ev.on_end());
  s.submit(job(2, 10, 10 * sim::kSecond, 10 * sim::kSecond), ev.on_start(),
           ev.on_end());
  s.submit(job(3, 2, 5 * sim::kSecond, 5 * sim::kSecond), ev.on_start(),
           ev.on_end());
  EXPECT_EQ(ev.started, (std::vector<JobId>{1}));
}

TEST(Backfill, ZeroEstimateJobsUseOnlySpareProcessors) {
  sim::Engine e;
  BatchScheduler s(e, 16, Backfill::kEasy);
  Events ev;
  // Job 1 blocks most of the machine; head job 2 will start at t=10 with
  // exactly 1 spare processor (16 - 15).
  s.submit(job(1, 4, 10 * sim::kSecond, 10 * sim::kSecond), ev.on_start(),
           ev.on_end());
  s.submit(job(2, 15, 10 * sim::kSecond, 10 * sim::kSecond), ev.on_start(),
           ev.on_end());
  // Jobs with no runtime and no estimate could run forever: they may never
  // be admitted on "ends before the shadow" grounds, only into the spare
  // set.  Job 3 (2 procs) exceeds the single spare; job 4 (1 proc) fits.
  s.submit(job(3, 2), ev.on_start(), ev.on_end());
  s.submit(job(4, 1), ev.on_start(), ev.on_end());
  EXPECT_EQ(ev.started, (std::vector<JobId>{1, 4}));
  e.run();
  // The forever-running spare job never delays the head: job 2 starts the
  // moment job 1 ends, and job 3 finally runs FCFS once job 2 finishes.
  EXPECT_EQ(ev.started, (std::vector<JobId>{1, 4, 2, 3}));
  ASSERT_EQ(s.wait_history().size(), 4u);
  EXPECT_EQ(s.wait_history()[2].started_at, 10 * sim::kSecond);
  EXPECT_EQ(s.wait_history()[3].started_at, 20 * sim::kSecond);
  EXPECT_TRUE(s.profile().invariants_ok());
}

TEST(Backfill, ExpiredEstimateMakesShadowImmediate) {
  sim::Engine e;
  BatchScheduler s(e, 10, Backfill::kEasy);
  Events ev;
  // Job 1 underestimates badly: claims 5 s, actually runs 20 s.
  s.submit(job(1, 4, 20 * sim::kSecond, 5 * sim::kSecond), ev.on_start(),
           ev.on_end());
  s.submit(job(2, 10, 5 * sim::kSecond, 5 * sim::kSecond), ev.on_start(),
           ev.on_end());
  // Before the estimate expires, a short job backfills normally.
  s.submit(job(3, 2, 4 * sim::kSecond, 4 * sim::kSecond), ev.on_start(),
           ev.on_end());
  EXPECT_EQ(ev.started, (std::vector<JobId>{1, 3}));
  // After t=5 job 1's estimate has expired: by the estimates the head
  // could start *now*, so nothing may be admitted ahead of it — even a
  // 1-processor job that fits the idle capacity.
  e.schedule_at(6 * sim::kSecond, [&] {
    s.submit(job(4, 1, sim::kSecond, sim::kSecond), ev.on_start(),
             ev.on_end());
  });
  e.run();
  // Order: job 2 starts when job 1 really ends (t=20), job 4 after job 2.
  EXPECT_EQ(ev.started, (std::vector<JobId>{1, 3, 2, 4}));
  ASSERT_EQ(s.wait_history().size(), 4u);
  EXPECT_EQ(s.wait_history()[2].started_at, 20 * sim::kSecond);
  EXPECT_EQ(s.wait_history()[3].started_at, 25 * sim::kSecond);
}

TEST(Backfill, CancelHeadWhileBackfillHoldsRun) {
  sim::Engine e;
  BatchScheduler s(e, 10, Backfill::kEasy);
  Events ev;
  s.submit(job(1, 8, 10 * sim::kSecond, 10 * sim::kSecond), ev.on_start(),
           ev.on_end());
  s.submit(job(2, 10, 10 * sim::kSecond, 10 * sim::kSecond), ev.on_start(),
           ev.on_end());
  s.submit(job(3, 2, 5 * sim::kSecond, 5 * sim::kSecond), ev.on_start(),
           ev.on_end());  // backfills beside job 1
  s.submit(job(4, 4, 20 * sim::kSecond, 20 * sim::kSecond), ev.on_start(),
           ev.on_end());  // too long and too wide to backfill
  EXPECT_EQ(ev.started, (std::vector<JobId>{1, 3}));
  // Cancel the blocked head while the backfilled hold is still running.
  e.schedule_at(2 * sim::kSecond, [&] { EXPECT_TRUE(s.cancel(2)); });
  e.run();
  // Job 4 becomes the head; it fits only once job 1 ends at t=10.
  EXPECT_EQ(ev.started, (std::vector<JobId>{1, 3, 4}));
  ASSERT_EQ(ev.ended.size(), 4u);
  EXPECT_EQ(ev.ended[0], (std::pair<JobId, EndReason>{2, EndReason::kCancelled}));
  ASSERT_EQ(s.wait_history().size(), 3u);
  EXPECT_EQ(s.wait_history()[2].started_at, 10 * sim::kSecond);
}

/// Property: under EASY backfill, the head job never starts later than it
/// would under pure FCFS with the same (deterministic) workload.
class BackfillProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BackfillProperty, HeadNeverDelayedVsFcfs) {
  for (int variant = 0; variant < 4; ++variant) {
    sim::Rng rng(GetParam() * 977 + variant);
    struct Run {
      std::vector<sim::Time> starts;
    };
    auto simulate = [&](Backfill mode) {
      sim::Engine e;
      BatchScheduler s(e, 32, mode);
      Run run;
      run.starts.resize(40, -1);
      sim::Rng local = rng;  // same workload for both modes
      for (JobId id = 1; id <= 40; ++id) {
        const auto count = static_cast<std::int32_t>(local.uniform_int(1, 32));
        const sim::Time runtime = local.uniform_time(1, 100) * sim::kSecond;
        const sim::Time at = local.uniform_time(0, 200) * sim::kSecond;
        e.schedule_at(at, [&s, &run, id, count, runtime] {
          JobDescriptor d;
          d.id = id;
          d.count = count;
          d.runtime = runtime;
          d.estimated_runtime = runtime;  // perfect estimates
          s.submit(
              d,
              [&run](JobId j) {
                // started_at recorded via history below
                (void)j;
              },
              nullptr);
        });
      }
      e.run();
      for (const auto& h : s.wait_history()) {
        run.starts[static_cast<std::size_t>(h.count) % 40] = 0;  // unused
      }
      return s.wait_history();
    };
    auto fcfs = simulate(Backfill::kNone);
    auto easy = simulate(Backfill::kEasy);
    // Total throughput identical; backfill never strands work.
    ASSERT_EQ(fcfs.size(), easy.size());
    // Mean wait under EASY is never worse than FCFS for this workload
    // (with perfect estimates EASY dominates FCFS in aggregate).
    sim::Time fcfs_total = 0, easy_total = 0;
    for (const auto& h : fcfs) fcfs_total += h.started_at - h.submitted_at;
    for (const auto& h : easy) easy_total += h.started_at - h.submitted_at;
    EXPECT_LE(easy_total, fcfs_total);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackfillProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ---- reservations ---------------------------------------------------------------

TEST(ReservationScheduler, AdmitsAndTracksWindows) {
  sim::Engine e;
  ReservationScheduler s(e, 16);
  auto r1 = s.reserve(10 * sim::kSecond, 20 * sim::kSecond, 8);
  ASSERT_TRUE(r1.is_ok());
  auto r2 = s.reserve(15 * sim::kSecond, 25 * sim::kSecond, 8);
  ASSERT_TRUE(r2.is_ok());
  // A third overlapping 8-processor window cannot fit a 16-way machine.
  EXPECT_FALSE(s.reserve(12 * sim::kSecond, 18 * sim::kSecond, 8).is_ok());
  EXPECT_EQ(s.reserved_at(16 * sim::kSecond), 16);
  EXPECT_EQ(s.reserved_at(5 * sim::kSecond), 0);
}

TEST(ReservationScheduler, RejectsBadWindows) {
  sim::Engine e;
  ReservationScheduler s(e, 16);
  EXPECT_FALSE(s.reserve(10, 10, 4).is_ok());   // empty window
  EXPECT_FALSE(s.reserve(10, 20, 17).is_ok());  // larger than machine
  EXPECT_FALSE(s.reserve(10, 20, 0).is_ok());
}

TEST(ReservationScheduler, BoundJobStartsAtWindowOpen) {
  sim::Engine e;
  ReservationScheduler s(e, 16);
  auto r = s.reserve(10 * sim::kSecond, 20 * sim::kSecond, 8);
  ASSERT_TRUE(r.is_ok());
  Events ev;
  sim::Time started_at = -1;
  ASSERT_TRUE(s.submit_reserved(job(1, 8, 5 * sim::kSecond), r.value().id,
                                [&](JobId) { started_at = e.now(); },
                                ev.on_end())
                  .is_ok());
  e.run();
  EXPECT_EQ(started_at, 10 * sim::kSecond);
  ASSERT_EQ(ev.ended.size(), 1u);
  EXPECT_EQ(ev.ended[0].second, EndReason::kCompleted);
}

TEST(ReservationScheduler, JobKilledAtWindowEnd) {
  sim::Engine e;
  ReservationScheduler s(e, 16);
  auto r = s.reserve(0, 10 * sim::kSecond, 8);
  ASSERT_TRUE(r.is_ok());
  Events ev;
  s.submit_reserved(job(1, 8, 60 * sim::kSecond), r.value().id, ev.on_start(),
                    ev.on_end());
  e.run();
  ASSERT_EQ(ev.ended.size(), 1u);
  EXPECT_EQ(ev.ended[0].second, EndReason::kWallTimeExceeded);
  EXPECT_EQ(e.now(), 10 * sim::kSecond);
}

TEST(ReservationScheduler, BestEffortAvoidsReservedWindow) {
  sim::Engine e;
  ReservationScheduler s(e, 16);
  auto r = s.reserve(5 * sim::kSecond, 15 * sim::kSecond, 16);
  ASSERT_TRUE(r.is_ok());
  Events ev;
  sim::Time started_at = -1;
  // 10-second best-effort job submitted at t=0 would collide with the
  // full-machine window at t=5: it must wait until the window closes.
  s.submit(job(1, 8, 10 * sim::kSecond, 10 * sim::kSecond),
           [&](JobId) { started_at = e.now(); }, ev.on_end());
  e.run();
  EXPECT_EQ(started_at, 15 * sim::kSecond);
}

TEST(ReservationScheduler, BestEffortRunsBesideSmallReservation) {
  sim::Engine e;
  ReservationScheduler s(e, 16);
  ASSERT_TRUE(s.reserve(5 * sim::kSecond, 15 * sim::kSecond, 8).is_ok());
  Events ev;
  sim::Time started_at = -1;
  s.submit(job(1, 8, 10 * sim::kSecond, 10 * sim::kSecond),
           [&](JobId) { started_at = e.now(); }, ev.on_end());
  e.run();
  EXPECT_EQ(started_at, 0);  // 8 + 8 fits throughout
}

TEST(ReservationScheduler, CancelReservationFreesWindow) {
  sim::Engine e;
  ReservationScheduler s(e, 16);
  auto r = s.reserve(5 * sim::kSecond, 15 * sim::kSecond, 16);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(s.cancel_reservation(r.value().id));
  EXPECT_FALSE(s.cancel_reservation(r.value().id));
  Events ev;
  sim::Time started_at = -1;
  s.submit(job(1, 16, 10 * sim::kSecond, 10 * sim::kSecond),
           [&](JobId) { started_at = e.now(); }, ev.on_end());
  e.run();
  EXPECT_EQ(started_at, 0);
}

TEST(ReservationScheduler, BestEffortBackfillsBesideActiveWindow) {
  sim::Engine e;
  ReservationScheduler s(e, 16);
  std::vector<std::pair<JobId, sim::Time>> starts;
  auto record = [&](JobId id) { starts.emplace_back(id, e.now()); };
  Events ev;
  auto r = s.reserve(10 * sim::kSecond, 20 * sim::kSecond, 8);
  ASSERT_TRUE(r.is_ok());
  ASSERT_TRUE(s.submit_reserved(job(100, 8, 5 * sim::kSecond,
                                    5 * sim::kSecond),
                                r.value().id, record, ev.on_end())
                  .is_ok());
  // While the window is ACTIVE: an 8-processor best-effort job fits in
  // the unreserved half and starts immediately...
  e.schedule_at(12 * sim::kSecond, [&] {
    s.submit(job(200, 8, 6 * sim::kSecond, 6 * sim::kSecond), record,
             ev.on_end());
  });
  // ...while a 9-processor one would collide with the window and must
  // wait for the window to close, even after processors free up at t=18.
  e.schedule_at(13 * sim::kSecond, [&] {
    s.submit(job(201, 9, 5 * sim::kSecond, 5 * sim::kSecond), record,
             ev.on_end());
  });
  e.run();
  const std::vector<std::pair<JobId, sim::Time>> want{
      {100, 10 * sim::kSecond},  // bound job at window open
      {200, 12 * sim::kSecond},  // beside the active window
      {201, 20 * sim::kSecond},  // only after the window closes
  };
  EXPECT_EQ(starts, want);
}

TEST(ReservationScheduler, AdmissionConsidersRunningWork) {
  sim::Engine e;
  ReservationScheduler s(e, 16);
  Events ev;
  // A best-effort job holds 16 processors until t=100 (estimated).
  s.submit(job(1, 16, 100 * sim::kSecond, 100 * sim::kSecond), ev.on_start(),
           ev.on_end());
  // A reservation overlapping the estimate must be refused ...
  EXPECT_FALSE(s.reserve(50 * sim::kSecond, 60 * sim::kSecond, 1).is_ok());
  // ... but one after the estimated drain is admitted.
  EXPECT_TRUE(
      s.reserve(150 * sim::kSecond, 160 * sim::kSecond, 16).is_ok());
}

/// Property: reservations admitted by the scheduler never overlap beyond
/// machine capacity, for random workloads.
class ReservationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReservationProperty, AdmittedWindowsNeverOversubscribe) {
  sim::Rng rng(GetParam() * 31 + 7);
  sim::Engine e;
  const std::int32_t capacity = 24;
  ReservationScheduler s(e, capacity);
  std::vector<Reservation> admitted;
  for (int i = 0; i < 200; ++i) {
    const sim::Time start = rng.uniform_time(0, 1000) * sim::kSecond;
    const sim::Time end = start + rng.uniform_time(1, 100) * sim::kSecond;
    const auto count = static_cast<std::int32_t>(rng.uniform_int(1, 16));
    auto r = s.reserve(start, end, count);
    if (r.is_ok()) admitted.push_back(r.value());
  }
  EXPECT_GT(admitted.size(), 10u);
  // Verify no instant is oversubscribed.
  for (const Reservation& probe : admitted) {
    for (sim::Time t : {probe.start, probe.end - 1}) {
      std::int32_t total = 0;
      for (const Reservation& r : admitted) {
        if (r.start <= t && t < r.end) total += r.count;
      }
      EXPECT_LE(total, capacity);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReservationProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---- predictors ------------------------------------------------------------------

TEST(AggregateWorkPredictor, ZeroForIdleMachine) {
  AggregateWorkPredictor p;
  QueueSnapshot snap;
  snap.total_processors = 16;
  snap.busy_processors = 0;
  EXPECT_EQ(p.predict(snap, 8), 0);
}

TEST(AggregateWorkPredictor, GrowsWithQueuedWork) {
  AggregateWorkPredictor p;
  QueueSnapshot light, heavy;
  light.total_processors = heavy.total_processors = 16;
  light.busy_processors = heavy.busy_processors = 16;
  light.queued.push_back({1, 8, 60 * sim::kSecond, 0});
  heavy.queued.push_back({1, 8, 60 * sim::kSecond, 0});
  heavy.queued.push_back({2, 16, 600 * sim::kSecond, 0});
  EXPECT_GT(p.predict(heavy, 8), p.predict(light, 8));
}

TEST(HistoryPredictor, EmptyPredictsZero) {
  HistoryPredictor p;
  QueueSnapshot snap;
  EXPECT_EQ(p.predict(snap, 4), 0);
}

TEST(HistoryPredictor, LearnsFromObservations) {
  HistoryPredictor p(128, 4);
  // Busy states waited ~100 s, idle states ~0 s.
  for (int i = 0; i < 20; ++i) {
    p.observe(10, 1000 * sim::kMinute, 8, 100 * sim::kSecond);
    p.observe(0, 0, 8, 0);
  }
  QueueSnapshot idle;
  idle.total_processors = 16;
  QueueSnapshot busy;
  busy.total_processors = 16;
  busy.busy_processors = 16;
  for (int i = 0; i < 10; ++i) {
    busy.queued.push_back({static_cast<JobId>(i), 8, 100 * sim::kMinute, 0});
  }
  EXPECT_LT(p.predict(idle, 8), 10 * sim::kSecond);
  EXPECT_GT(p.predict(busy, 8), 50 * sim::kSecond);
}

TEST(HistoryPredictor, TrainsFromSchedulerHistory) {
  sim::Engine e;
  BatchScheduler s(e, 8);
  s.submit(job(1, 8, 10 * sim::kSecond, 10 * sim::kSecond), nullptr, nullptr);
  s.submit(job(2, 8, 10 * sim::kSecond, 10 * sim::kSecond), nullptr, nullptr);
  e.run();
  HistoryPredictor p;
  p.train(s.wait_history());
  EXPECT_EQ(p.observation_count(), 2u);
}

TEST(HistoryPredictor, WindowEvictsOldest) {
  HistoryPredictor p(4, 2);
  for (int i = 0; i < 10; ++i) p.observe(i, 0, 1, i * sim::kSecond);
  EXPECT_EQ(p.observation_count(), 4u);
}

// ---- information service -----------------------------------------------------------

TEST(LoadInformationService, PublishesOnInterval) {
  sim::Engine e;
  BatchScheduler s(e, 8);
  LoadInformationService gis(e, 10 * sim::kSecond);
  gis.register_resource("rm", &s);
  gis.start();
  // Initial snapshot at registration: idle.
  EXPECT_EQ(gis.query("rm").value().busy_processors, 0);
  // Load appears at t=0 but is only visible after the next publish tick.
  s.submit(job(1, 8, 60 * sim::kSecond), nullptr, nullptr);
  e.run_until(5 * sim::kSecond);
  EXPECT_EQ(gis.query("rm").value().busy_processors, 0);  // stale
  EXPECT_EQ(gis.staleness("rm"), 5 * sim::kSecond);
  e.run_until(11 * sim::kSecond);
  EXPECT_EQ(gis.query("rm").value().busy_processors, 8);  // refreshed
  gis.stop();
}

TEST(LoadInformationService, ZeroIntervalIsPerfectInformation) {
  sim::Engine e;
  BatchScheduler s(e, 8);
  LoadInformationService gis(e, 0);
  gis.register_resource("rm", &s);
  s.submit(job(1, 4, 60 * sim::kSecond), nullptr, nullptr);
  EXPECT_EQ(gis.query("rm").value().busy_processors, 4);
}

TEST(LoadInformationService, UnknownContactFails) {
  sim::Engine e;
  LoadInformationService gis(e, sim::kSecond);
  EXPECT_FALSE(gis.query("nope").is_ok());
  EXPECT_EQ(gis.staleness("nope"), sim::kTimeNever);
}

}  // namespace
}  // namespace grid::sched
