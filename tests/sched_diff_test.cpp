// Differential test: BatchScheduler (profile-based EASY backfill) against
// ReferenceBackfill (the scan-based oracle transcribed from the seed).
//
// Each trial builds the same randomized workload twice — one world per
// implementation — runs both event loops to completion, and the main
// thread asserts that every observable is identical: submit verdicts,
// start order and start times, end order/times/reasons, cancel results,
// the wait-observation history (queue lengths and queued work at submit,
// which checks the O(1) bookkeeping against the oracle's O(n) rescans),
// and the final queue.  Workloads mix widths, estimate error (over, under,
// absent), zero runtimes, wall-time kills, cancels of queued and running
// jobs, and duplicate submissions.
//
// Trials fan out over sim::TrialPool; per the pool contract the trial
// bodies only build transcripts — all EXPECTs happen on the main thread.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sched/batch.hpp"
#include "sched/reference.hpp"
#include "simkit/engine.hpp"
#include "simkit/rng.hpp"
#include "simkit/trialpool.hpp"

namespace grid::sched {
namespace {

struct JobSpec {
  JobDescriptor desc;
  sim::Time submit_at = 0;
  sim::Time cancel_at = 0;  // 0 = never cancelled
};

struct Workload {
  std::int32_t processors = 0;
  std::vector<JobSpec> jobs;
};

Workload make_workload(std::uint64_t seed, std::size_t job_count) {
  sim::Rng rng(0x5eedfeedULL ^ seed * 0x9e3779b97f4a7c15ULL);
  Workload w;
  w.processors = static_cast<std::int32_t>(32 << rng.uniform_int(0, 3));
  w.jobs.reserve(job_count);
  sim::Time clock = 0;
  for (std::size_t i = 0; i < job_count; ++i) {
    JobSpec j;
    // Arrivals outpace service for long stretches so the queue gets deep.
    clock += rng.uniform_time(0, 60);
    j.submit_at = clock;
    j.desc.id = static_cast<JobId>(i + 1);
    if (i > 0 && i % 97 == 0) {
      j.desc.id = static_cast<JobId>(rng.uniform_int(
          1, static_cast<std::int64_t>(i)));  // duplicate: both must reject
    }
    // Width skewed small, with occasional near-machine-wide jobs that
    // block the head and open backfill windows.
    const std::int64_t width_class = rng.uniform_int(0, 9);
    if (width_class == 0) {
      j.desc.count = static_cast<std::int32_t>(
          rng.uniform_int(w.processors / 2, w.processors));
    } else {
      j.desc.count = static_cast<std::int32_t>(
          rng.uniform_int(1, std::max(2, w.processors / 8)));
    }
    // Runtime: mostly finite, sometimes zero (runs until cancelled).
    j.desc.runtime = rng.chance(0.05) ? 0 : rng.uniform_time(50, 4000);
    // Estimate error: absent, exact, optimistic (job runs past it), or
    // pessimistic.
    switch (rng.uniform_int(0, 3)) {
      case 0:
        j.desc.estimated_runtime = 0;
        break;
      case 1:
        j.desc.estimated_runtime = j.desc.runtime;
        break;
      case 2:
        j.desc.estimated_runtime =
            static_cast<sim::Time>(static_cast<double>(j.desc.runtime) *
                                   rng.uniform(0.3, 0.95));
        break;
      default:
        j.desc.estimated_runtime =
            static_cast<sim::Time>(static_cast<double>(j.desc.runtime) *
                                   rng.uniform(1.05, 3.0));
        break;
    }
    if (rng.chance(0.08)) {
      j.desc.max_wall_time = rng.uniform_time(50, 5000);  // sometimes kills
    }
    if (rng.chance(0.10)) {
      j.cancel_at = j.submit_at + rng.uniform_time(1, 6000);
    }
    w.jobs.push_back(std::move(j));
  }
  return w;
}

struct StartRec {
  JobId id = 0;
  sim::Time at = 0;

  bool operator==(const StartRec&) const = default;
};

struct EndRec {
  JobId id = 0;
  sim::Time at = 0;
  int reason = 0;

  bool operator==(const EndRec&) const = default;
};

struct Transcript {
  std::vector<bool> accepted;
  std::vector<StartRec> starts;
  std::vector<EndRec> ends;
  std::vector<bool> cancel_results;
  std::vector<BatchScheduler::WaitObservation> waits;
  std::vector<JobId> final_queue;
  std::int32_t final_busy = 0;
  bool profile_ok = true;  // BatchScheduler worlds audit their profile
};

bool operator==(const BatchScheduler::WaitObservation& a,
                const BatchScheduler::WaitObservation& b) {
  return a.submitted_at == b.submitted_at && a.started_at == b.started_at &&
         a.count == b.count &&
         a.queue_length_at_submit == b.queue_length_at_submit &&
         a.queued_work_at_submit == b.queued_work_at_submit;
}

template <typename Sched>
Transcript run_world(const Workload& w, Backfill mode) {
  sim::Engine eng;
  Sched sched(eng, w.processors, mode);
  Transcript t;
  for (std::size_t i = 0; i < w.jobs.size(); ++i) {
    const JobSpec& j = w.jobs[i];
    eng.schedule_at(j.submit_at, [&w, &sched, &eng, &t, i] {
      const util::Status st = sched.submit(
          w.jobs[i].desc,
          [&t, &eng](JobId id) { t.starts.push_back(StartRec{id, eng.now()}); },
          [&t, &eng](JobId id, EndReason r) {
            t.ends.push_back(EndRec{id, eng.now(), static_cast<int>(r)});
          });
      t.accepted.push_back(st.is_ok());
    });
    if (j.cancel_at > 0) {
      eng.schedule_at(j.cancel_at, [&w, &sched, &t, i] {
        t.cancel_results.push_back(sched.cancel(w.jobs[i].desc.id));
      });
    }
  }
  eng.run();
  t.waits = sched.wait_history();
  const QueueSnapshot s = sched.snapshot();
  for (const QueuedJobInfo& q : s.queued) t.final_queue.push_back(q.id);
  t.final_busy = sched.busy_processors();
  if constexpr (std::is_same_v<Sched, BatchScheduler>) {
    t.profile_ok = sched.profile().invariants_ok();
  }
  return t;
}

struct TrialResult {
  Transcript fast;
  Transcript oracle;
};

void expect_equal(const Transcript& fast, const Transcript& oracle,
                  std::size_t seed, const char* mode) {
  SCOPED_TRACE(std::string("seed ") + std::to_string(seed) + " mode " + mode);
  EXPECT_TRUE(fast.profile_ok);
  EXPECT_EQ(fast.accepted, oracle.accepted);
  ASSERT_EQ(fast.starts.size(), oracle.starts.size());
  for (std::size_t i = 0; i < fast.starts.size(); ++i) {
    ASSERT_EQ(fast.starts[i], oracle.starts[i]) << "start #" << i;
  }
  ASSERT_EQ(fast.ends.size(), oracle.ends.size());
  for (std::size_t i = 0; i < fast.ends.size(); ++i) {
    ASSERT_EQ(fast.ends[i], oracle.ends[i]) << "end #" << i;
  }
  EXPECT_EQ(fast.cancel_results, oracle.cancel_results);
  ASSERT_EQ(fast.waits.size(), oracle.waits.size());
  for (std::size_t i = 0; i < fast.waits.size(); ++i) {
    ASSERT_TRUE(fast.waits[i] == oracle.waits[i])
        << "wait observation #" << i << " diverged: queued_work "
        << fast.waits[i].queued_work_at_submit << " vs "
        << oracle.waits[i].queued_work_at_submit << ", queue_length "
        << fast.waits[i].queue_length_at_submit << " vs "
        << oracle.waits[i].queue_length_at_submit;
  }
  EXPECT_EQ(fast.final_queue, oracle.final_queue);
  EXPECT_EQ(fast.final_busy, oracle.final_busy);
}

void run_differential(Backfill mode, const char* label, std::size_t seeds,
                      std::size_t job_count) {
  sim::TrialPool pool;
  const std::vector<TrialResult> results =
      pool.map<TrialResult>(seeds, [&](std::size_t seed) {
        const Workload w = make_workload(seed, job_count);
        TrialResult r;
        r.fast = run_world<BatchScheduler>(w, mode);
        r.oracle = run_world<ReferenceBackfill>(w, mode);
        return r;
      });
  for (std::size_t seed = 0; seed < results.size(); ++seed) {
    expect_equal(results[seed].fast, results[seed].oracle, seed, label);
  }
}

TEST(SchedDiff, EasyBackfillMatchesOracleAcrossSeeds) {
  run_differential(Backfill::kEasy, "easy", 16, 1000);
}

TEST(SchedDiff, FcfsMatchesOracleAcrossSeeds) {
  run_differential(Backfill::kNone, "fcfs", 16, 1000);
}

TEST(SchedDiff, EasyBackfillMatchesOracleOnDeepQueue) {
  // One deeper world: arrivals pile thousands of jobs behind a blocked
  // head, the regime the profile rewrite exists for.
  run_differential(Backfill::kEasy, "easy-deep", 2, 4000);
}

}  // namespace
}  // namespace grid::sched
