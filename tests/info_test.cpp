// Tests for the networked grid information service and the resource
// broker (src/info).
#include <gtest/gtest.h>

#include "info/broker.hpp"
#include "info/gis.hpp"
#include "sched/batch.hpp"
#include "test_util.hpp"

namespace grid {
namespace {

TEST(GisCodec, SnapshotRoundTrip) {
  sched::QueueSnapshot snap;
  snap.taken_at = 42 * sim::kSecond;
  snap.total_processors = 64;
  snap.busy_processors = 48;
  snap.queued.push_back({7, 16, 5 * sim::kMinute, 10 * sim::kSecond});
  snap.queued.push_back({9, 32, sim::kHour, 20 * sim::kSecond});
  util::Writer w;
  info::encode_snapshot(w, snap);
  util::Reader r(w.bytes());
  const sched::QueueSnapshot back = info::decode_snapshot(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(back.taken_at, snap.taken_at);
  EXPECT_EQ(back.total_processors, snap.total_processors);
  EXPECT_EQ(back.busy_processors, snap.busy_processors);
  ASSERT_EQ(back.queued.size(), 2u);
  EXPECT_EQ(back.queued[1].id, 9u);
  EXPECT_EQ(back.queued[1].estimated_runtime, sim::kHour);
}

struct GisFixture : ::testing::Test {
  GisFixture() {
    engine = std::make_unique<sim::Engine>();
    network = std::make_unique<net::Network>(*engine);
    busy = std::make_unique<sched::BatchScheduler>(*engine, 64);
    idle = std::make_unique<sched::BatchScheduler>(*engine, 64);
    service = std::make_unique<sched::LoadInformationService>(
        *engine, 10 * sim::kSecond);
    service->register_resource("busy", busy.get());
    service->register_resource("idle", idle.get());
    server = std::make_unique<info::GisServer>(*network, *service);
    server->set_contacts({"busy", "idle"});
    endpoint = std::make_unique<net::Endpoint>(*network, "broker");
    client = std::make_unique<info::GisClient>(*endpoint, server->contact());
    // Load the busy machine.
    sched::JobDescriptor d;
    d.id = 1;
    d.count = 64;
    d.runtime = sim::kHour;
    d.estimated_runtime = sim::kHour;
    busy->submit(d, nullptr, nullptr);
    service->publish_now();
  }

  std::unique_ptr<sim::Engine> engine;
  std::unique_ptr<net::Network> network;
  std::unique_ptr<sched::BatchScheduler> busy;
  std::unique_ptr<sched::BatchScheduler> idle;
  std::unique_ptr<sched::LoadInformationService> service;
  std::unique_ptr<info::GisServer> server;
  std::unique_ptr<net::Endpoint> endpoint;
  std::unique_ptr<info::GisClient> client;
};

TEST_F(GisFixture, QueryReturnsPublishedSnapshot) {
  util::Result<sched::QueueSnapshot> got{
      util::Status(util::ErrorCode::kInternal, "unset")};
  client->query("busy", sim::kSecond,
                [&](util::Result<sched::QueueSnapshot> r) {
                  got = std::move(r);
                });
  engine->run();
  ASSERT_TRUE(got.is_ok()) << got.status().to_string();
  EXPECT_EQ(got.value().busy_processors, 64);
  EXPECT_EQ(server->queries_served(), 1u);
}

TEST_F(GisFixture, QueryCostsNetworkAndLookupTime) {
  sim::Time done_at = -1;
  client->query("idle", sim::kSecond,
                [&](util::Result<sched::QueueSnapshot>) {
                  done_at = engine->now();
                });
  engine->run();
  // 2 one-way 2 ms hops + 5 ms lookup = 9 ms.
  EXPECT_EQ(done_at, 9 * sim::kMillisecond);
}

TEST_F(GisFixture, UnknownContactReturnsNotFound) {
  util::Status status;
  client->query("mystery", sim::kSecond,
                [&](util::Result<sched::QueueSnapshot> r) {
                  status = r.status();
                });
  engine->run();
  EXPECT_EQ(status.code(), util::ErrorCode::kNotFound);
}

TEST_F(GisFixture, SnapshotsAreStaleNotLive) {
  // New load arrives after the last publish; a query must NOT see it.
  sched::JobDescriptor d;
  d.id = 2;
  d.count = 32;
  d.runtime = sim::kHour;
  idle->submit(d, nullptr, nullptr);
  util::Result<sched::QueueSnapshot> got{
      util::Status(util::ErrorCode::kInternal, "unset")};
  client->query("idle", sim::kSecond,
                [&](util::Result<sched::QueueSnapshot> r) {
                  got = std::move(r);
                });
  engine->run_until(sim::kSecond);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value().busy_processors, 0);  // stale view
}

TEST_F(GisFixture, ListContactsEnumeratesDirectory) {
  std::vector<std::string> contacts;
  client->list_contacts(sim::kSecond,
                        [&](util::Result<std::vector<std::string>> r) {
                          ASSERT_TRUE(r.is_ok());
                          contacts = r.take();
                        });
  engine->run();
  EXPECT_EQ(contacts, (std::vector<std::string>{"busy", "idle"}));
}

TEST_F(GisFixture, CrashedServerTimesOut) {
  network->set_node_up(server->contact(), false);
  util::Status status;
  client->query("busy", sim::kSecond,
                [&](util::Result<sched::QueueSnapshot> r) {
                  status = r.status();
                });
  engine->run();
  EXPECT_EQ(status.code(), util::ErrorCode::kTimeout);
}

TEST_F(GisFixture, QueryManyPreservesOrderAndPartialFailures) {
  std::vector<util::Result<sched::QueueSnapshot>> results;
  bool done = false;
  client->query_many({"idle", "mystery", "busy"}, sim::kSecond,
                     [&](std::vector<util::Result<sched::QueueSnapshot>> r) {
                       results = std::move(r);
                       done = true;
                     });
  engine->run();
  ASSERT_TRUE(done);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].is_ok());
  EXPECT_EQ(results[0].value().busy_processors, 0);
  EXPECT_FALSE(results[1].is_ok());
  EXPECT_TRUE(results[2].is_ok());
  EXPECT_EQ(results[2].value().busy_processors, 64);
}

TEST_F(GisFixture, QueryManyEmptyCompletesImmediately) {
  bool done = false;
  client->query_many({}, sim::kSecond,
                     [&](std::vector<util::Result<sched::QueueSnapshot>> r) {
                       EXPECT_TRUE(r.empty());
                       done = true;
                     });
  EXPECT_TRUE(done);
}

// ---- summary-first, shared snapshots, and the reply-payload cache ---------

TEST_F(GisFixture, SummaryQueryMatchesSnapshotAggregates) {
  // Give the busy machine a queued job so every aggregate field is nonzero.
  sched::JobDescriptor d;
  d.id = 2;
  d.count = 32;
  d.runtime = sim::kHour;
  d.estimated_runtime = sim::kHour;
  busy->submit(d, nullptr, nullptr);
  service->publish_now();
  util::Result<sched::QueueSummary> summary{
      util::Status(util::ErrorCode::kInternal, "unset")};
  util::Result<sched::QueueSnapshot> snap{
      util::Status(util::ErrorCode::kInternal, "unset")};
  client->query_summary("busy", sim::kSecond,
                        [&](util::Result<sched::QueueSummary> r) {
                          summary = std::move(r);
                        });
  client->query("busy", sim::kSecond,
                [&](util::Result<sched::QueueSnapshot> r) {
                  snap = std::move(r);
                });
  engine->run();
  ASSERT_TRUE(summary.is_ok()) << summary.status().to_string();
  ASSERT_TRUE(snap.is_ok()) << snap.status().to_string();
  const sched::QueueSummary derived = sched::summarize(snap.value());
  EXPECT_EQ(summary.value().taken_at, derived.taken_at);
  EXPECT_EQ(summary.value().total_processors, derived.total_processors);
  EXPECT_EQ(summary.value().busy_processors, derived.busy_processors);
  EXPECT_EQ(summary.value().queue_length, 1u);
  EXPECT_EQ(summary.value().queued_work, derived.queued_work);
}

TEST_F(GisFixture, PayloadCacheServesSharedFramesUntilRepublish) {
  const auto query_busy = [&] {
    bool done = false;
    client->query("busy", sim::kSecond,
                  [&](util::Result<sched::QueueSnapshot> r) {
                    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
                    done = true;
                  });
    engine->run();
    EXPECT_TRUE(done);
  };
  query_busy();
  query_busy();
  // First query encoded the reply; the second reused the shared frame.
  EXPECT_EQ(server->cache_stats().misses, 1u);
  EXPECT_EQ(server->cache_stats().hits, 1u);
  // New published content invalidates the cached frame exactly once.
  sched::JobDescriptor d;
  d.id = 3;
  d.count = 32;
  d.runtime = sim::kHour;
  busy->submit(d, nullptr, nullptr);
  service->publish_now();
  query_busy();
  EXPECT_EQ(server->cache_stats().misses, 2u);
  EXPECT_EQ(server->cache_stats().hits, 1u);
  query_busy();
  EXPECT_EQ(server->cache_stats().hits, 2u);
}

TEST_F(GisFixture, UnregisterWhileQueryInFlightReturnsNotFound) {
  util::Status status;
  bool done = false;
  client->query("busy", sim::kSecond,
                [&](util::Result<sched::QueueSnapshot> r) {
                  status = r.status();
                  done = true;
                });
  // The query is on the wire; the resource drops out of the directory
  // before the server's deferred lookup runs.
  service->unregister_resource("busy");
  engine->run();
  ASSERT_TRUE(done);
  EXPECT_EQ(status.code(), util::ErrorCode::kNotFound);
}

TEST_F(GisFixture, SharedSnapshotSurvivesRepublishAndUnregister) {
  const auto id = service->resolve("busy");
  ASSERT_NE(id, 0u);
  auto ref = service->snapshot_ref(id);
  ASSERT_TRUE(ref.is_ok());
  const sched::LoadInformationService::SnapshotRef held = ref.value();
  EXPECT_EQ(held->busy_processors, 64);
  EXPECT_TRUE(held->queued.empty());
  // A republish with new content swaps in a fresh snapshot object; the
  // held reference keeps observing the old one (query_many fan-outs hold
  // refs across publish rounds exactly like this).
  sched::JobDescriptor d;
  d.id = 4;
  d.count = 32;
  d.runtime = sim::kHour;
  busy->submit(d, nullptr, nullptr);
  service->publish_now();
  auto fresh = service->snapshot_ref(id);
  ASSERT_TRUE(fresh.is_ok());
  EXPECT_NE(fresh.value().get(), held.get());
  EXPECT_EQ(fresh.value()->queued.size(), 1u);
  EXPECT_TRUE(held->queued.empty());
  // Unregistration tombstones the entry without touching the held ref.
  service->unregister_resource("busy");
  EXPECT_FALSE(service->snapshot_ref(id).is_ok());
  EXPECT_EQ(held->busy_processors, 64);
  EXPECT_EQ(service->resource_count(), 1u);
}

TEST_F(GisFixture, DirtyFlagRepublishSkipsUnchangedQueues) {
  const auto id_busy = service->resolve("busy");
  const auto id_idle = service->resolve("idle");
  const std::uint64_t v_busy = service->published_version(id_busy);
  const std::uint64_t v_idle = service->published_version(id_idle);
  const auto before = service->stats();
  // Nothing moved since the fixture's publish: both entries skip.
  service->publish_now();
  EXPECT_EQ(service->stats().snapshots_skipped,
            before.snapshots_skipped + 2);
  EXPECT_EQ(service->published_version(id_busy), v_busy);
  EXPECT_EQ(service->published_version(id_idle), v_idle);
  // A submit dirties exactly one scheduler; only that entry re-copies.
  sched::JobDescriptor d;
  d.id = 5;
  d.count = 8;
  d.runtime = sim::kHour;
  busy->submit(d, nullptr, nullptr);
  service->publish_now();
  EXPECT_EQ(service->stats().snapshots_skipped,
            before.snapshots_skipped + 3);
  EXPECT_EQ(service->stats().snapshots_refreshed,
            before.snapshots_refreshed + 1);
  EXPECT_GT(service->published_version(id_busy), v_busy);
  EXPECT_EQ(service->published_version(id_idle), v_idle);
}

TEST(LoadInformationServicePerfect, LiveViewsAreNeverCacheable) {
  sim::Engine engine;
  sched::BatchScheduler s(engine, 8);
  sched::LoadInformationService service(engine, 0);
  service.register_resource("rm", &s);
  const auto id = service.resolve("rm");
  ASSERT_NE(id, 0u);
  // Perfect-information mode: consumers must never cache derived replies.
  EXPECT_EQ(service.published_version(id), 0u);
  sched::JobDescriptor d;
  d.id = 1;
  d.count = 4;
  d.runtime = sim::kMinute;
  s.submit(d, nullptr, nullptr);
  // Live view, no publish round needed.
  EXPECT_EQ(service.summary(id).value().busy_processors, 4);
  EXPECT_EQ(service.snapshot_ref(id).value()->busy_processors, 4);
}

TEST(GisServerPerfectInfo, CacheStaysColdOnLiveViews) {
  sim::Engine engine;
  net::Network network(engine);
  sched::BatchScheduler s(engine, 8);
  sched::LoadInformationService service(engine, 0);
  service.register_resource("rm", &s);
  info::GisServer server(network, service);
  server.set_contacts({"rm"});
  net::Endpoint ep(network, "client");
  info::GisClient client(ep, server.contact());
  std::int32_t seen = -1;
  client.query("rm", sim::kSecond, [&](util::Result<sched::QueueSnapshot> r) {
    ASSERT_TRUE(r.is_ok());
    seen = r.value().busy_processors;
  });
  engine.run();
  EXPECT_EQ(seen, 0);
  // The load changes; a cached frame would wrongly replay the old reply.
  sched::JobDescriptor d;
  d.id = 1;
  d.count = 4;
  d.runtime = sim::kHour;
  s.submit(d, nullptr, nullptr);
  client.query("rm", sim::kSecond, [&](util::Result<sched::QueueSnapshot> r) {
    ASSERT_TRUE(r.is_ok());
    seen = r.value().busy_processors;
  });
  engine.run();
  EXPECT_EQ(seen, 4);
  EXPECT_EQ(server.cache_stats().hits, 0u);
  EXPECT_EQ(server.cache_stats().misses, 2u);
}

// ---- broker ---------------------------------------------------------------------

TEST_F(GisFixture, BrokerPicksLeastLoaded) {
  sched::AggregateWorkPredictor predictor;
  info::ResourceBroker broker(*client, predictor);
  util::Result<std::vector<info::ResourceBroker::Placement>> got{
      util::Status(util::ErrorCode::kInternal, "unset")};
  broker.select({"busy", "idle"}, 1, 16, sim::kSecond,
                [&](util::Result<std::vector<info::ResourceBroker::Placement>>
                        r) { got = std::move(r); });
  engine->run();
  ASSERT_TRUE(got.is_ok()) << got.status().to_string();
  ASSERT_EQ(got.value().size(), 1u);
  EXPECT_EQ(got.value()[0].contact, "idle");
  EXPECT_EQ(got.value()[0].free_processors, 64);
}

TEST_F(GisFixture, BrokerSkipsTooSmallMachines) {
  sched::AggregateWorkPredictor predictor;
  info::ResourceBroker broker(*client, predictor);
  util::Status status;
  // Asking for 128 processors: neither 64-way machine qualifies.
  broker.select({"busy", "idle"}, 1, 128, sim::kSecond,
                [&](util::Result<std::vector<info::ResourceBroker::Placement>>
                        r) { status = r.status(); });
  engine->run();
  EXPECT_EQ(status.code(), util::ErrorCode::kResourceExhausted);
}

TEST_F(GisFixture, BrokerErrorsWhenTooFewCandidates) {
  sched::AggregateWorkPredictor predictor;
  info::ResourceBroker broker(*client, predictor);
  util::Status status;
  broker.select({"busy", "mystery"}, 2, 16, sim::kSecond,
                [&](util::Result<std::vector<info::ResourceBroker::Placement>>
                        r) { status = r.status(); });
  engine->run();
  EXPECT_EQ(status.code(), util::ErrorCode::kResourceExhausted);
}

TEST_F(GisFixture, BrokerRejectsDegenerateInputs) {
  sched::AggregateWorkPredictor predictor;
  info::ResourceBroker broker(*client, predictor);
  util::Status status;
  broker.select({}, 1, 16, sim::kSecond,
                [&](util::Result<std::vector<info::ResourceBroker::Placement>>
                        r) { status = r.status(); });
  EXPECT_EQ(status.code(), util::ErrorCode::kInvalidArgument);
}

TEST_F(GisFixture, BrokerSummarySelectionMatchesSnapshotSelection) {
  // The documented contract: with the stock predictors, the summary-first
  // path ranks candidates identically to full-snapshot selection.
  sched::AggregateWorkPredictor predictor;
  info::ResourceBroker broker(*client, predictor);
  util::Result<std::vector<info::ResourceBroker::Placement>> via_snap{
      util::Status(util::ErrorCode::kInternal, "unset")};
  util::Result<std::vector<info::ResourceBroker::Placement>> via_summary{
      util::Status(util::ErrorCode::kInternal, "unset")};
  broker.select({"busy", "idle"}, 2, 16, sim::kSecond,
                [&](util::Result<std::vector<info::ResourceBroker::Placement>>
                        r) { via_snap = std::move(r); });
  broker.select_by_summary(
      {"busy", "idle"}, 2, 16, sim::kSecond,
      [&](util::Result<std::vector<info::ResourceBroker::Placement>> r) {
        via_summary = std::move(r);
      });
  engine->run();
  ASSERT_TRUE(via_snap.is_ok()) << via_snap.status().to_string();
  ASSERT_TRUE(via_summary.is_ok()) << via_summary.status().to_string();
  ASSERT_EQ(via_snap.value().size(), via_summary.value().size());
  for (std::size_t i = 0; i < via_snap.value().size(); ++i) {
    EXPECT_EQ(via_snap.value()[i].contact, via_summary.value()[i].contact);
    EXPECT_EQ(via_snap.value()[i].predicted_wait,
              via_summary.value()[i].predicted_wait);
    EXPECT_EQ(via_snap.value()[i].free_processors,
              via_summary.value()[i].free_processors);
  }
}

TEST(Broker, BuildRequestsMapsPlacements) {
  std::vector<info::ResourceBroker::Placement> placements = {
      {"hostA", sim::kSecond, 64},
      {"hostB", 2 * sim::kSecond, 32},
  };
  auto jobs = info::ResourceBroker::build_requests(
      placements, 16, "sim", rsl::SubjobStartType::kRequired);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].resource_manager_contact, "hostA");
  EXPECT_EQ(jobs[1].resource_manager_contact, "hostB");
  EXPECT_EQ(jobs[0].count, 16);
  EXPECT_EQ(jobs[0].start_type, rsl::SubjobStartType::kRequired);
}

TEST(BrokerIntegration, EndToEndSelectionAndCoallocation) {
  // Full stack: grid + GIS + broker + DUROC.  The broker avoids the loaded
  // machine; the co-allocation releases on the two idle ones.
  test::SmallGrid g(3);
  sched::LoadInformationService service(g.grid->engine(), 0);
  for (int i = 1; i <= 3; ++i) {
    const std::string name = "host" + std::to_string(i);
    service.register_resource(name, &g.grid->host(name)->scheduler());
  }
  info::GisServer server(g.grid->network(), service);
  // host2 is fork-scheduled (unbounded), so use queue length via busy
  // processors: occupy it with a fork job.
  sched::JobDescriptor d;
  d.id = 77;
  d.count = 64;
  d.runtime = sim::kHour;
  g.grid->host("host2")->scheduler().submit(d, nullptr, nullptr);
  g.grid->run_until(sim::kSecond);
  service.publish_now();

  net::Endpoint ep(g.grid->network(), "broker");
  info::GisClient client(ep, server.contact());
  sched::AggregateWorkPredictor predictor;
  info::ResourceBroker broker(client, predictor);

  test::Outcome outcome;
  broker.select(
      {"host1", "host2", "host3"}, 2, 8, sim::kSecond,
      [&](util::Result<std::vector<info::ResourceBroker::Placement>> r) {
        ASSERT_TRUE(r.is_ok());
        for (const auto& p : r.value()) EXPECT_NE(p.contact, "host2");
        auto jobs = info::ResourceBroker::build_requests(
            r.value(), 8, "app", rsl::SubjobStartType::kRequired);
        auto* req = g.coallocator->create_request(outcome.callbacks());
        for (auto& j : jobs) req->add_subjob(std::move(j));
        req->commit();
      });
  g.grid->run();
  EXPECT_TRUE(outcome.released);
  EXPECT_EQ(outcome.config.total_processes, 16);
}

}  // namespace
}  // namespace grid
