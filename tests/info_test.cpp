// Tests for the networked grid information service and the resource
// broker (src/info).
#include <gtest/gtest.h>

#include "info/broker.hpp"
#include "info/gis.hpp"
#include "sched/batch.hpp"
#include "test_util.hpp"

namespace grid {
namespace {

TEST(GisCodec, SnapshotRoundTrip) {
  sched::QueueSnapshot snap;
  snap.taken_at = 42 * sim::kSecond;
  snap.total_processors = 64;
  snap.busy_processors = 48;
  snap.queued.push_back({7, 16, 5 * sim::kMinute, 10 * sim::kSecond});
  snap.queued.push_back({9, 32, sim::kHour, 20 * sim::kSecond});
  util::Writer w;
  info::encode_snapshot(w, snap);
  util::Reader r(w.bytes());
  const sched::QueueSnapshot back = info::decode_snapshot(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(back.taken_at, snap.taken_at);
  EXPECT_EQ(back.total_processors, snap.total_processors);
  EXPECT_EQ(back.busy_processors, snap.busy_processors);
  ASSERT_EQ(back.queued.size(), 2u);
  EXPECT_EQ(back.queued[1].id, 9u);
  EXPECT_EQ(back.queued[1].estimated_runtime, sim::kHour);
}

struct GisFixture : ::testing::Test {
  GisFixture() {
    engine = std::make_unique<sim::Engine>();
    network = std::make_unique<net::Network>(*engine);
    busy = std::make_unique<sched::BatchScheduler>(*engine, 64);
    idle = std::make_unique<sched::BatchScheduler>(*engine, 64);
    service = std::make_unique<sched::LoadInformationService>(
        *engine, 10 * sim::kSecond);
    service->register_resource("busy", busy.get());
    service->register_resource("idle", idle.get());
    server = std::make_unique<info::GisServer>(*network, *service);
    server->set_contacts({"busy", "idle"});
    endpoint = std::make_unique<net::Endpoint>(*network, "broker");
    client = std::make_unique<info::GisClient>(*endpoint, server->contact());
    // Load the busy machine.
    sched::JobDescriptor d;
    d.id = 1;
    d.count = 64;
    d.runtime = sim::kHour;
    d.estimated_runtime = sim::kHour;
    busy->submit(d, nullptr, nullptr);
    service->publish_now();
  }

  std::unique_ptr<sim::Engine> engine;
  std::unique_ptr<net::Network> network;
  std::unique_ptr<sched::BatchScheduler> busy;
  std::unique_ptr<sched::BatchScheduler> idle;
  std::unique_ptr<sched::LoadInformationService> service;
  std::unique_ptr<info::GisServer> server;
  std::unique_ptr<net::Endpoint> endpoint;
  std::unique_ptr<info::GisClient> client;
};

TEST_F(GisFixture, QueryReturnsPublishedSnapshot) {
  util::Result<sched::QueueSnapshot> got{
      util::Status(util::ErrorCode::kInternal, "unset")};
  client->query("busy", sim::kSecond,
                [&](util::Result<sched::QueueSnapshot> r) {
                  got = std::move(r);
                });
  engine->run();
  ASSERT_TRUE(got.is_ok()) << got.status().to_string();
  EXPECT_EQ(got.value().busy_processors, 64);
  EXPECT_EQ(server->queries_served(), 1u);
}

TEST_F(GisFixture, QueryCostsNetworkAndLookupTime) {
  sim::Time done_at = -1;
  client->query("idle", sim::kSecond,
                [&](util::Result<sched::QueueSnapshot>) {
                  done_at = engine->now();
                });
  engine->run();
  // 2 one-way 2 ms hops + 5 ms lookup = 9 ms.
  EXPECT_EQ(done_at, 9 * sim::kMillisecond);
}

TEST_F(GisFixture, UnknownContactReturnsNotFound) {
  util::Status status;
  client->query("mystery", sim::kSecond,
                [&](util::Result<sched::QueueSnapshot> r) {
                  status = r.status();
                });
  engine->run();
  EXPECT_EQ(status.code(), util::ErrorCode::kNotFound);
}

TEST_F(GisFixture, SnapshotsAreStaleNotLive) {
  // New load arrives after the last publish; a query must NOT see it.
  sched::JobDescriptor d;
  d.id = 2;
  d.count = 32;
  d.runtime = sim::kHour;
  idle->submit(d, nullptr, nullptr);
  util::Result<sched::QueueSnapshot> got{
      util::Status(util::ErrorCode::kInternal, "unset")};
  client->query("idle", sim::kSecond,
                [&](util::Result<sched::QueueSnapshot> r) {
                  got = std::move(r);
                });
  engine->run_until(sim::kSecond);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value().busy_processors, 0);  // stale view
}

TEST_F(GisFixture, ListContactsEnumeratesDirectory) {
  std::vector<std::string> contacts;
  client->list_contacts(sim::kSecond,
                        [&](util::Result<std::vector<std::string>> r) {
                          ASSERT_TRUE(r.is_ok());
                          contacts = r.take();
                        });
  engine->run();
  EXPECT_EQ(contacts, (std::vector<std::string>{"busy", "idle"}));
}

TEST_F(GisFixture, CrashedServerTimesOut) {
  network->set_node_up(server->contact(), false);
  util::Status status;
  client->query("busy", sim::kSecond,
                [&](util::Result<sched::QueueSnapshot> r) {
                  status = r.status();
                });
  engine->run();
  EXPECT_EQ(status.code(), util::ErrorCode::kTimeout);
}

TEST_F(GisFixture, QueryManyPreservesOrderAndPartialFailures) {
  std::vector<util::Result<sched::QueueSnapshot>> results;
  bool done = false;
  client->query_many({"idle", "mystery", "busy"}, sim::kSecond,
                     [&](std::vector<util::Result<sched::QueueSnapshot>> r) {
                       results = std::move(r);
                       done = true;
                     });
  engine->run();
  ASSERT_TRUE(done);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].is_ok());
  EXPECT_EQ(results[0].value().busy_processors, 0);
  EXPECT_FALSE(results[1].is_ok());
  EXPECT_TRUE(results[2].is_ok());
  EXPECT_EQ(results[2].value().busy_processors, 64);
}

TEST_F(GisFixture, QueryManyEmptyCompletesImmediately) {
  bool done = false;
  client->query_many({}, sim::kSecond,
                     [&](std::vector<util::Result<sched::QueueSnapshot>> r) {
                       EXPECT_TRUE(r.empty());
                       done = true;
                     });
  EXPECT_TRUE(done);
}

// ---- broker ---------------------------------------------------------------------

TEST_F(GisFixture, BrokerPicksLeastLoaded) {
  sched::AggregateWorkPredictor predictor;
  info::ResourceBroker broker(*client, predictor);
  util::Result<std::vector<info::ResourceBroker::Placement>> got{
      util::Status(util::ErrorCode::kInternal, "unset")};
  broker.select({"busy", "idle"}, 1, 16, sim::kSecond,
                [&](util::Result<std::vector<info::ResourceBroker::Placement>>
                        r) { got = std::move(r); });
  engine->run();
  ASSERT_TRUE(got.is_ok()) << got.status().to_string();
  ASSERT_EQ(got.value().size(), 1u);
  EXPECT_EQ(got.value()[0].contact, "idle");
  EXPECT_EQ(got.value()[0].free_processors, 64);
}

TEST_F(GisFixture, BrokerSkipsTooSmallMachines) {
  sched::AggregateWorkPredictor predictor;
  info::ResourceBroker broker(*client, predictor);
  util::Status status;
  // Asking for 128 processors: neither 64-way machine qualifies.
  broker.select({"busy", "idle"}, 1, 128, sim::kSecond,
                [&](util::Result<std::vector<info::ResourceBroker::Placement>>
                        r) { status = r.status(); });
  engine->run();
  EXPECT_EQ(status.code(), util::ErrorCode::kResourceExhausted);
}

TEST_F(GisFixture, BrokerErrorsWhenTooFewCandidates) {
  sched::AggregateWorkPredictor predictor;
  info::ResourceBroker broker(*client, predictor);
  util::Status status;
  broker.select({"busy", "mystery"}, 2, 16, sim::kSecond,
                [&](util::Result<std::vector<info::ResourceBroker::Placement>>
                        r) { status = r.status(); });
  engine->run();
  EXPECT_EQ(status.code(), util::ErrorCode::kResourceExhausted);
}

TEST_F(GisFixture, BrokerRejectsDegenerateInputs) {
  sched::AggregateWorkPredictor predictor;
  info::ResourceBroker broker(*client, predictor);
  util::Status status;
  broker.select({}, 1, 16, sim::kSecond,
                [&](util::Result<std::vector<info::ResourceBroker::Placement>>
                        r) { status = r.status(); });
  EXPECT_EQ(status.code(), util::ErrorCode::kInvalidArgument);
}

TEST(Broker, BuildRequestsMapsPlacements) {
  std::vector<info::ResourceBroker::Placement> placements = {
      {"hostA", sim::kSecond, 64},
      {"hostB", 2 * sim::kSecond, 32},
  };
  auto jobs = info::ResourceBroker::build_requests(
      placements, 16, "sim", rsl::SubjobStartType::kRequired);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].resource_manager_contact, "hostA");
  EXPECT_EQ(jobs[1].resource_manager_contact, "hostB");
  EXPECT_EQ(jobs[0].count, 16);
  EXPECT_EQ(jobs[0].start_type, rsl::SubjobStartType::kRequired);
}

TEST(BrokerIntegration, EndToEndSelectionAndCoallocation) {
  // Full stack: grid + GIS + broker + DUROC.  The broker avoids the loaded
  // machine; the co-allocation releases on the two idle ones.
  test::SmallGrid g(3);
  sched::LoadInformationService service(g.grid->engine(), 0);
  for (int i = 1; i <= 3; ++i) {
    const std::string name = "host" + std::to_string(i);
    service.register_resource(name, &g.grid->host(name)->scheduler());
  }
  info::GisServer server(g.grid->network(), service);
  // host2 is fork-scheduled (unbounded), so use queue length via busy
  // processors: occupy it with a fork job.
  sched::JobDescriptor d;
  d.id = 77;
  d.count = 64;
  d.runtime = sim::kHour;
  g.grid->host("host2")->scheduler().submit(d, nullptr, nullptr);
  g.grid->run_until(sim::kSecond);
  service.publish_now();

  net::Endpoint ep(g.grid->network(), "broker");
  info::GisClient client(ep, server.contact());
  sched::AggregateWorkPredictor predictor;
  info::ResourceBroker broker(client, predictor);

  test::Outcome outcome;
  broker.select(
      {"host1", "host2", "host3"}, 2, 8, sim::kSecond,
      [&](util::Result<std::vector<info::ResourceBroker::Placement>> r) {
        ASSERT_TRUE(r.is_ok());
        for (const auto& p : r.value()) EXPECT_NE(p.contact, "host2");
        auto jobs = info::ResourceBroker::build_requests(
            r.value(), 8, "app", rsl::SubjobStartType::kRequired);
        auto* req = g.coallocator->create_request(outcome.callbacks());
        for (auto& j : jobs) req->add_subjob(std::move(j));
        req->commit();
      });
  g.grid->run();
  EXPECT_TRUE(outcome.released);
  EXPECT_EQ(outcome.config.total_processes, 16);
}

}  // namespace
}  // namespace grid
