// MPICH-G style application (§4.3): "the Grid-enabled MPICH-G
// implementation of MPI uses DUROC to start the elements of an MPI job.
// In this case, all DUROC calls are hidden in the MPI library, and an
// application does not have to make any modifications to benefit from
// DUROC co-allocation."
//
// This example defines an "MPI application" whose code only sees the
// gridmpi Communicator; the DUROC barrier and the §3.3 configuration
// bootstrap are hidden in the runtime.  The application computes a global
// dot-product-ish reduction and a ring token pass across three machines.
//
//   $ ./gridmpi_app
#include <cstdio>
#include <memory>

#include "config/gridmpi.hpp"
#include "core/app_barrier.hpp"
#include "testbed/grid.hpp"

using namespace grid;

namespace {

/// What the application programmer writes: rank logic over a communicator.
void application_main(cfg::Communicator& comm, testbed::Grid& grid) {
  // Every rank contributes rank+1; the global sum is n(n+1)/2.
  comm.allreduce_sum(comm.rank() + 1, [&comm, &grid](std::int64_t total) {
    if (comm.rank() == 0) {
      std::printf("[%7.3fs] allreduce: sum over %d ranks = %lld\n",
                  sim::to_seconds(grid.engine().now()), comm.size(),
                  static_cast<long long>(total));
    }
    // Ring token pass: rank r forwards to (r+1) % size; rank 0 starts.
    const std::int32_t next = (comm.rank() + 1) % comm.size();
    comm.recv(/*tag=*/1, [&comm, &grid, next](std::int32_t src,
                                              util::Reader& payload) {
      const std::int64_t hops = payload.i64();
      if (comm.rank() == 0) {
        std::printf("[%7.3fs] ring token returned to rank 0 after %lld hops "
                    "(last hop from rank %d)\n",
                    sim::to_seconds(grid.engine().now()),
                    static_cast<long long>(hops), src);
        return;
      }
      util::Writer w;
      w.i64(hops + 1);
      comm.send(next, 1, w.take_bytes());
    });
    if (comm.rank() == 0) {
      util::Writer w;
      w.i64(1);
      comm.send(next, 1, w.take_bytes());
    }
  });
}

/// The "MPI library": barrier + bootstrap hidden from application code.
class GridMpiProcess final : public gram::ProcessBehavior {
 public:
  explicit GridMpiProcess(testbed::Grid* grid) : grid_(grid) {}

  void start(gram::ProcessApi& api) override {
    api_ = &api;
    barrier_ = std::make_unique<core::BarrierClient>(api);
    barrier_->enter(
        true, "",
        [this](const core::ReleaseInfo& info) {
          comm_ = std::make_unique<cfg::Communicator>(barrier_->endpoint(),
                                                      info);
          comm_->init([this] { application_main(*comm_, *grid_); });
        },
        [this](const std::string&) { api_->exit(true, "aborted"); });
  }

  void on_terminate() override {
    comm_.reset();
    barrier_.reset();
  }

 private:
  testbed::Grid* grid_;
  gram::ProcessApi* api_ = nullptr;
  std::unique_ptr<core::BarrierClient> barrier_;
  std::unique_ptr<cfg::Communicator> comm_;
};

}  // namespace

int main() {
  testbed::Grid grid;
  grid.add_host("cluster-a", 64);
  grid.add_host("cluster-b", 64);
  grid.add_host("cluster-c", 64);
  grid.executables().install("mpi-app", [&grid] {
    return std::make_unique<GridMpiProcess>(&grid);
  });

  auto mechanisms = grid.make_coallocator("mpirun", "/O=Grid/CN=mpi");
  // "mpirun": one DUROC request, all hidden from the application.
  auto* req = mechanisms->create_request({});
  req->add_rsl(testbed::rsl_multi({
      testbed::rsl_subjob("cluster-a", 4, "mpi-app", "required"),
      testbed::rsl_subjob("cluster-b", 3, "mpi-app", "required"),
      testbed::rsl_subjob("cluster-c", 5, "mpi-app", "required"),
  }));
  std::printf("mpirun: starting a 12-rank MPI job over 3 machines via "
              "DUROC\n\n");
  req->commit();
  grid.run();

  const auto& config = req->runtime_config();
  std::printf("\nMPI_COMM_WORLD layout:\n");
  for (const auto& layout : config.subjobs) {
    std::printf("  %-9s ranks [%2d..%2d]\n", layout.contact.c_str(),
                layout.rank_base, layout.rank_base + layout.size - 1);
  }
  return config.total_processes == 12 ? 0 : 1;
}
