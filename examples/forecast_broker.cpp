// Forecast-guided resource brokering (§2.2 + §3.1).
//
// A resource broker queries the grid information service for published
// queue snapshots of six candidate machines, ranks them with a wait-time
// predictor, and co-allocates on the three least-loaded — "the
// co-allocator may use information published by local managers to select
// from among alternative candidate resources".
//
//   $ ./forecast_broker
#include <cstdio>

#include "app/behaviors.hpp"
#include "info/broker.hpp"
#include "sched/predict.hpp"
#include "testbed/grid.hpp"

using namespace grid;

int main() {
  testbed::Grid grid;
  app::BarrierStats stats;
  for (int i = 1; i <= 6; ++i) {
    grid.add_host("site" + std::to_string(i), 64,
                  testbed::SchedulerKind::kFcfs);
  }
  app::install_app(grid.executables(), "app", {}, &stats);

  // Background load: sites 1, 3, 5 carry queued work.
  sim::Rng rng(7);
  sched::JobId bg_id = 1000;
  for (const char* busy : {"site1", "site3", "site5"}) {
    for (int j = 0; j < 3; ++j) {
      sched::JobDescriptor d;
      d.id = bg_id++;
      d.count = static_cast<std::int32_t>(rng.uniform_int(32, 64));
      d.runtime = rng.uniform_time(20, 60) * sim::kMinute;
      d.estimated_runtime = d.runtime;
      grid.host(busy)->scheduler().submit(d, nullptr, nullptr);
    }
  }

  // The information service publishes snapshots every 30 s.
  sched::LoadInformationService service(grid.engine(), 30 * sim::kSecond);
  std::vector<std::string> candidates;
  for (int i = 1; i <= 6; ++i) {
    const std::string name = "site" + std::to_string(i);
    candidates.push_back(name);
    service.register_resource(name, &grid.host(name)->scheduler());
  }
  service.publish_now();
  service.start();
  info::GisServer gis(grid.network(), service);
  gis.set_contacts(candidates);

  auto mechanisms = grid.make_coallocator("agent", "/O=Grid/CN=broker");
  net::Endpoint broker_ep(grid.network(), "broker");
  info::GisClient gis_client(broker_ep, gis.contact());
  sched::AggregateWorkPredictor predictor(30 * sim::kMinute);
  info::ResourceBroker broker(gis_client, predictor);

  bool released = false;
  broker.select(
      candidates, /*k=*/3, /*count=*/32, 10 * sim::kSecond,
      [&](util::Result<std::vector<info::ResourceBroker::Placement>> r) {
        if (!r.is_ok()) {
          std::fprintf(stderr, "broker: %s\n", r.status().to_string().c_str());
          return;
        }
        std::printf("broker ranked the candidates; selected:\n");
        for (const auto& p : r.value()) {
          std::printf("  %-6s predicted wait %6.1f s, %2d processors free\n",
                      p.contact.c_str(), sim::to_seconds(p.predicted_wait),
                      p.free_processors);
        }
        auto jobs = info::ResourceBroker::build_requests(
            r.value(), 32, "app", rsl::SubjobStartType::kRequired);
        auto* req = mechanisms->create_request(
            {.on_subjob = nullptr,
             .on_released =
                 [&](const core::RuntimeConfig& config) {
                   released = true;
                   std::printf("\n[%7.2fs] released: %d processes on",
                               sim::to_seconds(grid.engine().now()),
                               config.total_processes);
                   for (const auto& layout : config.subjobs) {
                     std::printf(" %s", layout.contact.c_str());
                   }
                   std::printf("\n");
                 },
             .on_terminal = nullptr});
        for (auto& j : jobs) req->add_subjob(std::move(j));
        req->commit();
      });
  grid.run_until(10 * sim::kMinute);

  std::printf("\nthe loaded sites (1, 3, 5) were avoided; the computation "
              "started without\nqueueing behind their backlog.\n");
  return released ? 0 : 1;
}
