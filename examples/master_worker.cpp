// The paper's Figure 1 scenario: a master/worker computation co-allocated
// with DUROC.
//
// One required master subjob plus several interactive worker pools.  One
// pool turns out to be broken; a minimum-count agent gathers enough
// workers, drops the laggard, and commits — "if enough worker processors
// cannot be allocated, the application can abort the computation; once
// enough resources have been collected, it can terminate subjobs that have
// not yet responded to the request prior to committing" (§4.1).
//
//   $ ./master_worker
#include <cstdio>

#include "app/behaviors.hpp"
#include "core/strategies.hpp"
#include "testbed/grid.hpp"

using namespace grid;

int main() {
  testbed::Grid grid;
  app::BarrierStats stats;
  for (int i = 1; i <= 5; ++i) grid.add_host("RM" + std::to_string(i), 64);

  app::install_app(grid.executables(), "master", {}, &stats);
  app::install_app(grid.executables(), "worker", {}, &stats);
  // RM4 is overloaded: its workers take half an hour to initialize.
  app::install_app(grid.executables(), "worker-slow",
                   {.init_delay = 30 * sim::kMinute}, &stats);

  auto mechanisms = grid.make_coallocator("agent", "/O=Grid/CN=mw");

  // The Figure 1 request, verbatim structure.
  const std::string rsl = testbed::rsl_multi({
      testbed::rsl_subjob("RM1", 1, "master", "required"),
      testbed::rsl_subjob("RM2", 4, "worker", "interactive"),
      testbed::rsl_subjob("RM3", 4, "worker", "interactive"),
      testbed::rsl_subjob("RM4", 4, "worker-slow", "interactive"),
      testbed::rsl_subjob("RM5", 4, "worker", "interactive"),
  });
  std::printf("RSL request (Figure 1):\n%s\n\n", rsl.c_str());

  bool released = false;
  core::MinimumCountAgent agent(
      *mechanisms,
      {.minimum_processes = 9,  // master + 8 workers are "enough"
       .decision_deadline = 10 * sim::kMinute},
      {
          .on_subjob =
              [&](core::SubjobHandle h, core::SubjobState s,
                  const util::Status& why) {
                std::printf("[%7.2fs] subjob %llu -> %-11s %s\n",
                            sim::to_seconds(grid.engine().now()),
                            static_cast<unsigned long long>(h),
                            core::to_string(s).c_str(),
                            why.is_ok() ? "" : why.to_string().c_str());
              },
          .on_released =
              [&](const core::RuntimeConfig& config) {
                released = true;
                std::printf("\n[%7.2fs] released: %d processes, %zu "
                            "subjobs:\n",
                            sim::to_seconds(grid.engine().now()),
                            config.total_processes, config.subjobs.size());
                for (const auto& layout : config.subjobs) {
                  std::printf("  subjob %d on %-4s size %d ranks [%d..%d]\n",
                              layout.index, layout.contact.c_str(),
                              layout.size, layout.rank_base,
                              layout.rank_base + layout.size - 1);
                }
              },
          .on_terminal =
              [&](const util::Status& status) {
                std::printf("\n[%7.2fs] terminal: %s\n",
                            sim::to_seconds(grid.engine().now()),
                            status.to_string().c_str());
              },
      });
  if (auto st = agent.request().add_rsl(rsl); !st.is_ok()) {
    std::fprintf(stderr, "bad RSL: %s\n", st.to_string().c_str());
    return 1;
  }
  agent.request().start();
  grid.run();

  std::printf("\nworker pool RM4 never responded and was terminated before "
              "commit;\nthe computation ran with %lld released processes.\n",
              static_cast<long long>(stats.releases));
  return released ? 0 : 1;
}
