// Quickstart: co-allocate one application across three machines with DUROC.
//
// Builds a simulated grid (three 64-processor machines, a NIS server, a
// certificate authority), installs an application executable, submits a
// multi-resource RSL request through the interactive-transaction
// co-allocator, and reports the allocation timeline.
//
//   $ ./quickstart
#include <cstdio>

#include "app/behaviors.hpp"
#include "core/duroc.hpp"
#include "testbed/grid.hpp"
#include "testbed/report.hpp"

using namespace grid;

int main() {
  // 1. A grid: three machines two milliseconds away, fork-started jobs
  //    (the paper's §4.2 configuration).
  testbed::Grid grid;
  grid.add_host("mach1", 64);
  grid.add_host("mach2", 64);
  grid.add_host("mach3", 64);

  // 2. An application.  Every process initializes for ~20 ms, runs its
  //    local startup checks, enters the co-allocation barrier, and after
  //    release computes for two virtual seconds.
  app::BarrierStats stats;
  app::StartupProfile profile;
  profile.run_time = 2 * sim::kSecond;
  app::install_app(grid.executables(), "simulation", profile, &stats);

  // 3. A co-allocation request: 32 processes on each machine, all
  //    required — the computation needs all 96 or none.
  auto mechanisms = grid.make_coallocator("agent", "/O=Grid/CN=alice");
  core::DurocAllocator duroc(*mechanisms);

  bool released = false;
  util::Status outcome;
  core::CoallocationRequest* request = duroc.create_request({
      .on_subjob =
          [&](core::SubjobHandle h, core::SubjobState s, const util::Status&) {
            std::printf("[%8.3fs] subjob %llu -> %s\n",
                        sim::to_seconds(grid.engine().now()),
                        static_cast<unsigned long long>(h),
                        core::to_string(s).c_str());
          },
      .on_released =
          [&](const core::RuntimeConfig& config) {
            released = true;
            std::printf("[%8.3fs] barrier released: %d processes in %zu "
                        "subjobs\n",
                        sim::to_seconds(grid.engine().now()),
                        config.total_processes, config.subjobs.size());
          },
      .on_terminal = [&](const util::Status& status) { outcome = status; },
  });

  const std::string rsl = testbed::rsl_multi({
      testbed::rsl_subjob("mach1", 32, "simulation", "required"),
      testbed::rsl_subjob("mach2", 32, "simulation", "required"),
      testbed::rsl_subjob("mach3", 32, "simulation", "required"),
  });
  std::printf("request: %s\n\n", rsl.c_str());
  if (auto st = request->add_rsl(rsl); !st.is_ok()) {
    std::fprintf(stderr, "bad RSL: %s\n", st.to_string().c_str());
    return 1;
  }

  // 4. Atomically in this case: start, then commit immediately.
  request->start();
  request->commit();
  grid.run();

  // 5. Report.
  testbed::print_heading("quickstart results");
  std::printf("  outcome: %s\n", outcome.to_string().c_str());
  std::printf("  released: %s at %.3fs\n", released ? "yes" : "no",
              sim::to_seconds(request->released_at()));
  auto waits = stats.wait_samples();
  std::printf("  processes released: %lld, completions: %lld\n",
              static_cast<long long>(stats.releases),
              static_cast<long long>(stats.completions));
  std::printf("  barrier wait: min %.3fs  median %.3fs  max %.3fs\n",
              waits.min(), waits.median(), waits.max());
  return outcome.is_ok() && released ? 0 : 1;
}
