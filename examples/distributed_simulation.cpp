// The §2 application scenario, end to end.
//
// "A large distributed simulation requires 400 processors ... Five
// computers are identified that can collectively provide the required 400
// processors ... one of the computers turns out to be unavailable due to a
// system crash.  This failure is handled by dropping that computer from
// the ensemble and adding another, located dynamically. ... after five
// minutes the fifth system has not joined ... The solution adopted ... is
// to drop the 'faulty' system from the ensemble, and proceed with just
// four systems, at a decreased level of simulation fidelity, but with the
// same completion time."
//
//   $ ./distributed_simulation
#include <cstdio>

#include "app/behaviors.hpp"
#include "core/duroc.hpp"
#include "testbed/grid.hpp"

using namespace grid;

namespace {

void log_line(const testbed::Grid& grid, const std::string& msg) {
  std::printf("[%7.2fs] %s\n",
              sim::to_seconds(const_cast<testbed::Grid&>(grid).engine().now()),
              msg.c_str());
}

}  // namespace

int main() {
  testbed::Grid grid;
  app::BarrierStats stats;
  for (int i = 1; i <= 6; ++i) grid.add_host("site" + std::to_string(i), 128);

  app::install_app(grid.executables(), "sim",
                   {.init_delay = 45 * sim::kSecond,
                    .init_jitter = 15 * sim::kSecond},
                   &stats);
  // site5 is overloaded with other work: its processes initialize far too
  // slowly to make the startup deadline.
  app::install_app(grid.executables(), "sim-overloaded",
                   {.init_delay = 40 * sim::kMinute}, &stats);
  // site3 has crashed before the request is issued.
  grid.host("site3")->crash();

  auto mechanisms = grid.make_coallocator("agent", "/O=Grid/CN=dis");
  core::RequestConfig config;
  config.rpc_timeout = 10 * sim::kSecond;
  // The application's startup deadline: five minutes.
  config.startup_timeout = 5 * sim::kMinute;
  core::DurocAllocator duroc(*mechanisms);

  core::CoallocationRequest* req = nullptr;
  bool substituted = false;
  bool released = false;
  req = duroc.create_request(
      {
          .on_subjob =
              [&](core::SubjobHandle h, core::SubjobState s,
                  const util::Status& why) {
                auto view = req->subjob(h);
                const std::string where =
                    view.is_ok() ? view.value().contact : "?";
                log_line(grid, "subjob " + std::to_string(h) + " (" + where +
                                   ") -> " + core::to_string(s) +
                                   (why.is_ok() ? "" : "  [" +
                                                           why.to_string() +
                                                           "]"));
                if (s != core::SubjobState::kFailed ||
                    req->state() != core::RequestState::kEditing) {
                  return;
                }
                if (where == "site3" && !substituted) {
                  substituted = true;
                  log_line(grid,
                           ">> site3 is down; adding site6, located "
                           "dynamically");
                  auto original = req->subjob_request(h);
                  rsl::JobRequest r = original.take();
                  r.resource_manager_contact = "site6";
                  req->substitute_subjob(h, std::move(r));
                } else if (where == "site5") {
                  log_line(grid,
                           ">> site5 missed the startup deadline; dropping "
                           "it and proceeding with four systems at reduced "
                           "fidelity");
                  req->commit();
                }
              },
          .on_released =
              [&](const core::RuntimeConfig& cfg) {
                released = true;
                log_line(grid, "barrier released: " +
                                   std::to_string(cfg.total_processes) +
                                   " processors on " +
                                   std::to_string(cfg.subjobs.size()) +
                                   " systems");
              },
          .on_terminal =
              [&](const util::Status& status) {
                log_line(grid, "terminal: " + status.to_string());
              },
      },
      config);

  std::printf("co-allocating a 400-processor distributed simulation on five "
              "systems\n(80 processors each); site3 is crashed, site5 is "
              "overloaded\n\n");
  std::vector<std::string> sites = {"site1", "site2", "site3", "site4",
                                    "site5"};
  for (const std::string& site : sites) {
    rsl::JobRequest j;
    j.resource_manager_contact = site;
    j.executable = site == "site5" ? "sim-overloaded" : "sim";
    j.count = 80;
    j.start_type = rsl::SubjobStartType::kInteractive;
    req->add_subjob(std::move(j));
  }
  req->start();
  grid.run();

  std::printf("\nfinal: %d processors released across %zu systems "
              "(%s fidelity)\n",
              req->runtime_config().total_processes,
              req->runtime_config().subjobs.size(),
              req->runtime_config().total_processes == 400 ? "full"
                                                           : "reduced");
  return released ? 0 : 1;
}
