// Advance co-reservation through the full protocol stack (§2.2, §5 —
// implemented here as the extension the paper argues for, following its
// reference [13]).
//
// Two machines are busy with batch work.  A co-reservation agent acquires
// matching windows on both *over the network* (GSI-authenticated GRAM
// reservation requests, two-phase all-or-nothing), binds a DUROC request
// to the reservations with the RSL reservationId attribute, and the
// co-allocated application starts on both machines at the same instant —
// which best-effort queueing cannot guarantee.
//
//   $ ./advance_reservation
#include <cstdio>

#include "app/behaviors.hpp"
#include "core/coreserver.hpp"
#include "core/duroc.hpp"
#include "testbed/grid.hpp"

using namespace grid;

int main() {
  testbed::Grid grid;
  grid.add_host("mpp-east", 64, testbed::SchedulerKind::kReservation);
  grid.add_host("mpp-west", 64, testbed::SchedulerKind::kReservation);
  app::BarrierStats stats;
  app::install_app(grid.executables(), "app",
                   {.run_time = 30 * sim::kMinute}, &stats);

  // Existing batch load on both machines.
  sched::JobId next_id = 1;
  sim::Rng rng(2026);
  for (const char* name : {"mpp-east", "mpp-west"}) {
    for (int i = 0; i < 6; ++i) {
      sched::JobDescriptor d;
      d.id = next_id++;
      d.count = static_cast<std::int32_t>(rng.uniform_int(24, 64));
      d.runtime = rng.exponential_time(20 * sim::kMinute);
      d.estimated_runtime = d.runtime;
      grid.host(name)->scheduler().submit(d, nullptr, nullptr);
    }
  }
  std::printf("both machines carry batch queues; best-effort pieces would "
              "start at\nunpredictable, different times.\n\n");

  core::RequestConfig defaults;
  defaults.startup_timeout = 12 * sim::kHour;  // covers the window wait
  auto mechanisms =
      grid.make_coallocator("agent", "/O=Grid/CN=reserve", defaults);
  core::DurocAllocator duroc(*mechanisms);

  // Phase 1: network co-reservation (each reserve RPC pays GSI + latency).
  core::NetworkCoReserver reserver(mechanisms->gram(), grid.resolver());
  core::NetworkCoReserver::Options options;
  options.duration = sim::kHour;
  options.count = 32;
  options.step = 15 * sim::kMinute;
  options.horizon = 24 * sim::kHour;

  bool released = false;
  sim::Time window = -1;
  std::vector<std::pair<std::string, sim::Time>> active;
  core::CoallocationRequest* req = nullptr;
  reserver.acquire(
      {"mpp-east", "mpp-west"}, options,
      [&](util::Result<std::vector<core::NetworkCoReserver::Hold>> holds) {
        if (!holds.is_ok()) {
          std::fprintf(stderr, "co-reservation failed: %s\n",
                       holds.status().to_string().c_str());
          return;
        }
        window = holds.value().front().start;
        std::printf("co-reservation acquired over GRAM: 32 processors on "
                    "each machine at t=%.0f min\n",
                    sim::to_seconds(window) / 60);
        // Phase 2: co-allocate into the windows (reservationId binding).
        auto jobs = core::NetworkCoReserver::build_requests(
            holds.value(), 32, "app", rsl::SubjobStartType::kRequired);
        req = duroc.create_request(
            {.on_subjob =
                 [&](core::SubjobHandle h, core::SubjobState s,
                     const util::Status&) {
                   if (s == core::SubjobState::kActive) {
                     auto view = req->subjob(h);
                     active.emplace_back(
                         view.is_ok() ? view.value().contact : "?",
                         grid.engine().now());
                   }
                 },
             .on_released =
                 [&](const core::RuntimeConfig& config) {
                   released = true;
                   std::printf("\n[%6.1f min] barrier released: %d processes "
                               "across %zu machines\n",
                               sim::to_seconds(grid.engine().now()) / 60,
                               config.total_processes,
                               config.subjobs.size());
                 },
             .on_terminal = nullptr});
        std::printf("submitting DUROC request bound to the reservations:\n");
        for (auto& j : jobs) {
          std::printf("  %s\n", j.to_spec().to_string().c_str());
          req->add_subjob(std::move(j));
        }
        req->commit();
      });
  grid.run();

  std::printf("\nsubjobs went ACTIVE at:\n");
  for (const auto& [name, at] : active) {
    std::printf("  %-9s %7.2f min\n", name.c_str(),
                sim::to_seconds(at) / 60);
  }
  const bool simultaneous = active.size() == 2 &&
                            active[0].second == active[1].second;
  std::printf("\nsimultaneous start inside the co-reserved window: %s\n",
              simultaneous && released ? "yes" : "NO");
  return simultaneous && released ? 0 : 1;
}
