#!/usr/bin/env python3
"""gridlint: source-hygiene scanner for the co-allocation stack.

The simulator's determinism and performance contracts are easy to break
with one innocent-looking line: a `steady_clock::now()` call makes results
machine-dependent, an `unordered_map` on a message path reintroduces the
per-insert allocations the slab work removed, and iterating an unordered
container while scheduling events makes event order depend on the hash
function.  The compiler accepts all of these; this scanner does not.

Rules (each can be suppressed per line with `// gridlint: allow(<rule>)`
on the offending or the preceding line, or per file via ALLOW below —
every file-level allow carries its justification):

  wallclock      wall-clock time sources (`system_clock`, `steady_clock`,
                 `std::rand`, `time(...)`, `gettimeofday`) anywhere in
                 src/.  Simulated time comes from sim::Engine; the only
                 wall-clock consumer is the trial-pool harness.
  env            raw environment access (`getenv`) in src/.  Simulated
                 processes read their environment through the ProcessApi
                 abstraction so tests can inject it.
  hot-container  `std::unordered_map`/`std::unordered_set` in the hot
                 layers (src/net, src/core, src/simkit).  Use sim::IdMap /
                 sim::IdSlab: deterministic iteration, zero steady-state
                 allocation.
  hot-function   `std::function` in src/net or src/simkit.  Per-message
                 callbacks use sim::InplaceFunction; std::function's
                 type-erased heap capture is reserved for registration-time
                 APIs in the cold layers.
  unordered-iter range-for over a container declared unordered anywhere in
                 src/.  Iteration order is hash-dependent; if the loop body
                 schedules events or sends messages, results silently stop
                 being reproducible.  Order-independent folds may suppress
                 with a comment explaining why order cannot leak.
  naked-new      `new` / `malloc` in the steady-state message path
                 (src/net, simkit/bufpool, simkit/codec).  Buffers come
                 from the pool; call state lives in slabs.

Exit status: 0 clean, 1 findings, 2 usage error.  `--selftest` runs the
rules against tests/lint_fixtures/ and verifies each rule both fires on
its bad fixture and stays silent on the clean one.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

# ---------------------------------------------------------------------------
# Rule table
# ---------------------------------------------------------------------------

HOT_LAYERS = ("src/net/", "src/core/", "src/simkit/")
MESSAGE_PATH = (
    "src/net/",
    "src/simkit/bufpool",
    "src/simkit/codec",
)

RULES = {
    "wallclock": {
        "pattern": re.compile(
            r"std::chrono::(?:system_clock|steady_clock|high_resolution_clock)"
            r"|(?<!\w)(?:system_clock|steady_clock|high_resolution_clock)::now"
            r"|std::rand\s*\(|(?<![\w:.])rand\s*\(\s*\)"
            r"|(?<![\w:.>])time\s*\(\s*(?:NULL|nullptr|0|&)"
            r"|gettimeofday\s*\(|clock_gettime\s*\("
        ),
        "applies": lambda p: p.startswith("src/"),
        "message": "wall-clock time source; simulated code uses sim::Engine time",
    },
    "env": {
        "pattern": re.compile(r"std::getenv\s*\(|(?<![\w:.>])getenv\s*\("),
        "applies": lambda p: p.startswith("src/"),
        "message": "raw environment access; go through the ProcessApi abstraction",
    },
    "hot-container": {
        "pattern": re.compile(r"std::unordered_(?:map|set)\b"),
        "applies": lambda p: p.startswith(HOT_LAYERS),
        "message": "unordered container in a hot layer; use sim::IdMap/sim::IdSlab",
    },
    "hot-function": {
        "pattern": re.compile(r"std::function\b"),
        "applies": lambda p: p.startswith(("src/net/", "src/simkit/")),
        "message": "std::function in a hot layer; use sim::InplaceFunction",
    },
    # Handled specially (needs the cross-file set of unordered names).
    "unordered-iter": {
        "pattern": None,
        "applies": lambda p: p.startswith("src/"),
        "message": "iteration over an unordered container; order is "
                   "hash-dependent and must not reach events or messages",
    },
    "naked-new": {
        "pattern": re.compile(r"(?<![\w:.])new\b(?!\s*\()|(?<![\w:.])malloc\s*\("),
        "applies": lambda p: p.startswith(MESSAGE_PATH),
        "message": "raw allocation on the message path; use the buffer pool / slabs",
    },
}

# File-level allows.  Every entry says WHY the rule does not apply; an
# unexplained entry is a review failure, not a config.
ALLOW = {
    ("src/simkit/trialpool.cpp", "wallclock"):
        "the trial pool is the harness boundary: it times real threads",
    ("src/simkit/trialpool.cpp", "env"):
        "GRID_TRIAL_THREADS is read once at pool construction, harness-side",
    ("src/simkit/trialpool.hpp", "hot-function"):
        "trial bodies run once per seeded trial, never per event",
    ("src/simkit/trialpool.cpp", "hot-function"):
        "same registration-time std::function as the header",
    ("src/simkit/log.hpp", "hot-function"):
        "log sinks are installed once per run; logging is compiled out of "
        "measurement builds",
    ("src/gram/process.hpp", "env"):
        "ProcessApi IS the sanctioned environment abstraction",
    ("src/gram/jobmanager.cpp", "env"):
        "concrete ProcessApi implementation backing the abstraction",
}

SUPPRESS_RE = re.compile(r"gridlint:\s*allow\(([a-z-]+)\)")
FIXTURE_RE = re.compile(r"^//\s*gridlint-fixture:\s*(\S+)\s+(\S+)")

SOURCE_DIRS = ("src", "bench", "examples", "tools")
SOURCE_EXTS = (".cpp", ".hpp", ".h", ".cc")


# ---------------------------------------------------------------------------
# C++ text preparation
# ---------------------------------------------------------------------------

def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literal contents, preserving the
    line structure so reported line numbers match the original file."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(quote)
            elif c == "\n":  # unterminated (macro tricks); recover
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def suppressed_lines(raw_lines: list[str]) -> dict[int, set[str]]:
    """Line number (1-based) -> rules suppressed there.  An allow comment
    covers its own line and the line after it."""
    supp: dict[int, set[str]] = {}
    for idx, line in enumerate(raw_lines, start=1):
        for m in SUPPRESS_RE.finditer(line):
            supp.setdefault(idx, set()).add(m.group(1))
            supp.setdefault(idx + 1, set()).add(m.group(1))
    return supp


UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set)<[^;{}()]*?>\s*\n?\s*(\w+)\s*(?:;|=|\{)",
    re.DOTALL,
)
RANGE_FOR_RE = re.compile(r"for\s*\([^;()]*?:\s*(\w+)\s*\)")


# ---------------------------------------------------------------------------
# Scanning
# ---------------------------------------------------------------------------

def collect_unordered_names(stripped_by_path: dict[str, str]) -> set[str]:
    names: set[str] = set()
    for text in stripped_by_path.values():
        for m in UNORDERED_DECL_RE.finditer(text):
            names.add(m.group(1))
    return names


def scan_file(path: str, raw: str, stripped: str, unordered_names: set[str]):
    """Yields (path, line, rule, snippet) findings."""
    raw_lines = raw.splitlines()
    supp = suppressed_lines(raw_lines)
    stripped_lines = stripped.splitlines()

    def allowed(rule: str, lineno: int) -> bool:
        if (path, rule) in ALLOW:
            return True
        return rule in supp.get(lineno, set())

    for rule, spec in RULES.items():
        if not spec["applies"](path):
            continue
        if rule == "unordered-iter":
            for lineno, line in enumerate(stripped_lines, start=1):
                for m in RANGE_FOR_RE.finditer(line):
                    if m.group(1) in unordered_names and not allowed(rule, lineno):
                        yield (path, lineno, rule, line.strip())
            continue
        pattern = spec["pattern"]
        for lineno, line in enumerate(stripped_lines, start=1):
            if pattern.search(line) and not allowed(rule, lineno):
                yield (path, lineno, rule, line.strip())


def iter_sources(root: str):
    for top in SOURCE_DIRS:
        base = os.path.join(root, top)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    full = os.path.join(dirpath, name)
                    yield os.path.relpath(full, root).replace(os.sep, "/")


def run_scan(root: str) -> int:
    stripped_by_path: dict[str, str] = {}
    raw_by_path: dict[str, str] = {}
    for rel in iter_sources(root):
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            raw = f.read()
        raw_by_path[rel] = raw
        stripped_by_path[rel] = strip_comments_and_strings(raw)

    unordered_names = collect_unordered_names(
        {p: t for p, t in stripped_by_path.items() if p.startswith("src/")})

    findings = []
    for rel, raw in raw_by_path.items():
        findings.extend(
            scan_file(rel, raw, stripped_by_path[rel], unordered_names))

    for path, lineno, rule, snippet in findings:
        print(f"{path}:{lineno}: [{rule}] {RULES[rule]['message']}")
        print(f"    {snippet}")
    if findings:
        print(f"gridlint: {len(findings)} finding(s)")
        return 1
    print(f"gridlint: clean ({len(raw_by_path)} files)")
    return 0


# ---------------------------------------------------------------------------
# Self-test against the fixtures
# ---------------------------------------------------------------------------

def run_selftest(root: str) -> int:
    fixture_dir = os.path.join(root, "tests", "lint_fixtures")
    if not os.path.isdir(fixture_dir):
        print(f"gridlint --selftest: missing {fixture_dir}", file=sys.stderr)
        return 2
    failures = []
    checked = 0
    seen_rules: set[str] = set()
    for name in sorted(os.listdir(fixture_dir)):
        if not name.endswith(SOURCE_EXTS):
            continue
        with open(os.path.join(fixture_dir, name), encoding="utf-8") as f:
            raw = f.read()
        header = FIXTURE_RE.match(raw)
        if not header:
            failures.append(f"{name}: missing '// gridlint-fixture:' header")
            continue
        pretend_path, expectation = header.group(1), header.group(2)
        stripped = strip_comments_and_strings(raw)
        names = collect_unordered_names({pretend_path: stripped})
        fired = {rule for (_, _, rule, _) in
                 scan_file(pretend_path, raw, stripped, names)}
        expected = set() if expectation == "-" else set(expectation.split(","))
        seen_rules.update(expected)
        checked += 1
        if fired != expected:
            failures.append(
                f"{name} (as {pretend_path}): expected {sorted(expected) or 'nothing'},"
                f" got {sorted(fired) or 'nothing'}")
    missing = set(RULES) - seen_rules
    if missing:
        failures.append(f"no fixture exercises rule(s): {sorted(missing)}")
    for f in failures:
        print(f"gridlint --selftest: FAIL {f}")
    if failures:
        return 1
    print(f"gridlint --selftest: {checked} fixtures ok, all "
          f"{len(RULES)} rules exercised")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("--selftest", action="store_true",
                    help="verify each rule against tests/lint_fixtures/")
    args = ap.parse_args()
    root = os.path.abspath(args.root)
    if args.selftest:
        return run_selftest(root)
    return run_scan(root)


if __name__ == "__main__":
    sys.exit(main())
