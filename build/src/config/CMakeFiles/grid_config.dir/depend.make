# Empty dependencies file for grid_config.
# This may be replaced when dependencies are built.
