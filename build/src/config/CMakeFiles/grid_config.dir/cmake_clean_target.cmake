file(REMOVE_RECURSE
  "libgrid_config.a"
)
