file(REMOVE_RECURSE
  "CMakeFiles/grid_config.dir/gridmpi.cpp.o"
  "CMakeFiles/grid_config.dir/gridmpi.cpp.o.d"
  "CMakeFiles/grid_config.dir/runtime_api.cpp.o"
  "CMakeFiles/grid_config.dir/runtime_api.cpp.o.d"
  "libgrid_config.a"
  "libgrid_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
