file(REMOVE_RECURSE
  "CMakeFiles/grid_net.dir/network.cpp.o"
  "CMakeFiles/grid_net.dir/network.cpp.o.d"
  "CMakeFiles/grid_net.dir/retry.cpp.o"
  "CMakeFiles/grid_net.dir/retry.cpp.o.d"
  "CMakeFiles/grid_net.dir/rpc.cpp.o"
  "CMakeFiles/grid_net.dir/rpc.cpp.o.d"
  "libgrid_net.a"
  "libgrid_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
