file(REMOVE_RECURSE
  "libgrid_net.a"
)
