# Empty dependencies file for grid_net.
# This may be replaced when dependencies are built.
