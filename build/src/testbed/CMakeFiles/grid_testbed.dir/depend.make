# Empty dependencies file for grid_testbed.
# This may be replaced when dependencies are built.
