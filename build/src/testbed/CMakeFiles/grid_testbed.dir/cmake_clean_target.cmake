file(REMOVE_RECURSE
  "libgrid_testbed.a"
)
