
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/testbed/grid.cpp" "src/testbed/CMakeFiles/grid_testbed.dir/grid.cpp.o" "gcc" "src/testbed/CMakeFiles/grid_testbed.dir/grid.cpp.o.d"
  "/root/repo/src/testbed/report.cpp" "src/testbed/CMakeFiles/grid_testbed.dir/report.cpp.o" "gcc" "src/testbed/CMakeFiles/grid_testbed.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simkit/CMakeFiles/grid_simkit.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/grid_net.dir/DependInfo.cmake"
  "/root/repo/build/src/rsl/CMakeFiles/grid_rsl.dir/DependInfo.cmake"
  "/root/repo/build/src/gsi/CMakeFiles/grid_gsi.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/grid_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/gram/CMakeFiles/grid_gram.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/grid_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
