file(REMOVE_RECURSE
  "CMakeFiles/grid_testbed.dir/grid.cpp.o"
  "CMakeFiles/grid_testbed.dir/grid.cpp.o.d"
  "CMakeFiles/grid_testbed.dir/report.cpp.o"
  "CMakeFiles/grid_testbed.dir/report.cpp.o.d"
  "libgrid_testbed.a"
  "libgrid_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
