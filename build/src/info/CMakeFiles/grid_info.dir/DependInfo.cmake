
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/info/broker.cpp" "src/info/CMakeFiles/grid_info.dir/broker.cpp.o" "gcc" "src/info/CMakeFiles/grid_info.dir/broker.cpp.o.d"
  "/root/repo/src/info/gis.cpp" "src/info/CMakeFiles/grid_info.dir/gis.cpp.o" "gcc" "src/info/CMakeFiles/grid_info.dir/gis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simkit/CMakeFiles/grid_simkit.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/grid_net.dir/DependInfo.cmake"
  "/root/repo/build/src/rsl/CMakeFiles/grid_rsl.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/grid_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
