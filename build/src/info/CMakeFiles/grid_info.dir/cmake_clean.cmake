file(REMOVE_RECURSE
  "CMakeFiles/grid_info.dir/broker.cpp.o"
  "CMakeFiles/grid_info.dir/broker.cpp.o.d"
  "CMakeFiles/grid_info.dir/gis.cpp.o"
  "CMakeFiles/grid_info.dir/gis.cpp.o.d"
  "libgrid_info.a"
  "libgrid_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
