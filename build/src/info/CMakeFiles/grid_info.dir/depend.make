# Empty dependencies file for grid_info.
# This may be replaced when dependencies are built.
