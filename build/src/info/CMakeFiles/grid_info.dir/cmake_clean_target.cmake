file(REMOVE_RECURSE
  "libgrid_info.a"
)
