file(REMOVE_RECURSE
  "libgrid_sched.a"
)
