
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/batch.cpp" "src/sched/CMakeFiles/grid_sched.dir/batch.cpp.o" "gcc" "src/sched/CMakeFiles/grid_sched.dir/batch.cpp.o.d"
  "/root/repo/src/sched/coreservation.cpp" "src/sched/CMakeFiles/grid_sched.dir/coreservation.cpp.o" "gcc" "src/sched/CMakeFiles/grid_sched.dir/coreservation.cpp.o.d"
  "/root/repo/src/sched/fork.cpp" "src/sched/CMakeFiles/grid_sched.dir/fork.cpp.o" "gcc" "src/sched/CMakeFiles/grid_sched.dir/fork.cpp.o.d"
  "/root/repo/src/sched/infoservice.cpp" "src/sched/CMakeFiles/grid_sched.dir/infoservice.cpp.o" "gcc" "src/sched/CMakeFiles/grid_sched.dir/infoservice.cpp.o.d"
  "/root/repo/src/sched/predict.cpp" "src/sched/CMakeFiles/grid_sched.dir/predict.cpp.o" "gcc" "src/sched/CMakeFiles/grid_sched.dir/predict.cpp.o.d"
  "/root/repo/src/sched/reservation.cpp" "src/sched/CMakeFiles/grid_sched.dir/reservation.cpp.o" "gcc" "src/sched/CMakeFiles/grid_sched.dir/reservation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simkit/CMakeFiles/grid_simkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
