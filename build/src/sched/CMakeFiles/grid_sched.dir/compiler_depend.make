# Empty compiler generated dependencies file for grid_sched.
# This may be replaced when dependencies are built.
