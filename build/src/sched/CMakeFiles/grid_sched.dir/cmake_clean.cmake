file(REMOVE_RECURSE
  "CMakeFiles/grid_sched.dir/batch.cpp.o"
  "CMakeFiles/grid_sched.dir/batch.cpp.o.d"
  "CMakeFiles/grid_sched.dir/coreservation.cpp.o"
  "CMakeFiles/grid_sched.dir/coreservation.cpp.o.d"
  "CMakeFiles/grid_sched.dir/fork.cpp.o"
  "CMakeFiles/grid_sched.dir/fork.cpp.o.d"
  "CMakeFiles/grid_sched.dir/infoservice.cpp.o"
  "CMakeFiles/grid_sched.dir/infoservice.cpp.o.d"
  "CMakeFiles/grid_sched.dir/predict.cpp.o"
  "CMakeFiles/grid_sched.dir/predict.cpp.o.d"
  "CMakeFiles/grid_sched.dir/reservation.cpp.o"
  "CMakeFiles/grid_sched.dir/reservation.cpp.o.d"
  "libgrid_sched.a"
  "libgrid_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
