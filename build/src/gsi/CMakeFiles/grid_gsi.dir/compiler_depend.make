# Empty compiler generated dependencies file for grid_gsi.
# This may be replaced when dependencies are built.
