file(REMOVE_RECURSE
  "libgrid_gsi.a"
)
