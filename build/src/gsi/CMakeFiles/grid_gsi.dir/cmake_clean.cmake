file(REMOVE_RECURSE
  "CMakeFiles/grid_gsi.dir/credential.cpp.o"
  "CMakeFiles/grid_gsi.dir/credential.cpp.o.d"
  "CMakeFiles/grid_gsi.dir/protocol.cpp.o"
  "CMakeFiles/grid_gsi.dir/protocol.cpp.o.d"
  "libgrid_gsi.a"
  "libgrid_gsi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_gsi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
