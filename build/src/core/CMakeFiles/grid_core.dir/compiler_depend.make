# Empty compiler generated dependencies file for grid_core.
# This may be replaced when dependencies are built.
