
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/app_barrier.cpp" "src/core/CMakeFiles/grid_core.dir/app_barrier.cpp.o" "gcc" "src/core/CMakeFiles/grid_core.dir/app_barrier.cpp.o.d"
  "/root/repo/src/core/barrier_protocol.cpp" "src/core/CMakeFiles/grid_core.dir/barrier_protocol.cpp.o" "gcc" "src/core/CMakeFiles/grid_core.dir/barrier_protocol.cpp.o.d"
  "/root/repo/src/core/coallocator.cpp" "src/core/CMakeFiles/grid_core.dir/coallocator.cpp.o" "gcc" "src/core/CMakeFiles/grid_core.dir/coallocator.cpp.o.d"
  "/root/repo/src/core/composite.cpp" "src/core/CMakeFiles/grid_core.dir/composite.cpp.o" "gcc" "src/core/CMakeFiles/grid_core.dir/composite.cpp.o.d"
  "/root/repo/src/core/coreserver.cpp" "src/core/CMakeFiles/grid_core.dir/coreserver.cpp.o" "gcc" "src/core/CMakeFiles/grid_core.dir/coreserver.cpp.o.d"
  "/root/repo/src/core/grab.cpp" "src/core/CMakeFiles/grid_core.dir/grab.cpp.o" "gcc" "src/core/CMakeFiles/grid_core.dir/grab.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/core/CMakeFiles/grid_core.dir/monitor.cpp.o" "gcc" "src/core/CMakeFiles/grid_core.dir/monitor.cpp.o.d"
  "/root/repo/src/core/request.cpp" "src/core/CMakeFiles/grid_core.dir/request.cpp.o" "gcc" "src/core/CMakeFiles/grid_core.dir/request.cpp.o.d"
  "/root/repo/src/core/strategies.cpp" "src/core/CMakeFiles/grid_core.dir/strategies.cpp.o" "gcc" "src/core/CMakeFiles/grid_core.dir/strategies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simkit/CMakeFiles/grid_simkit.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/grid_net.dir/DependInfo.cmake"
  "/root/repo/build/src/rsl/CMakeFiles/grid_rsl.dir/DependInfo.cmake"
  "/root/repo/build/src/gsi/CMakeFiles/grid_gsi.dir/DependInfo.cmake"
  "/root/repo/build/src/gram/CMakeFiles/grid_gram.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/grid_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
