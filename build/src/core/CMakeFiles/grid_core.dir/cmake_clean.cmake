file(REMOVE_RECURSE
  "CMakeFiles/grid_core.dir/app_barrier.cpp.o"
  "CMakeFiles/grid_core.dir/app_barrier.cpp.o.d"
  "CMakeFiles/grid_core.dir/barrier_protocol.cpp.o"
  "CMakeFiles/grid_core.dir/barrier_protocol.cpp.o.d"
  "CMakeFiles/grid_core.dir/coallocator.cpp.o"
  "CMakeFiles/grid_core.dir/coallocator.cpp.o.d"
  "CMakeFiles/grid_core.dir/composite.cpp.o"
  "CMakeFiles/grid_core.dir/composite.cpp.o.d"
  "CMakeFiles/grid_core.dir/coreserver.cpp.o"
  "CMakeFiles/grid_core.dir/coreserver.cpp.o.d"
  "CMakeFiles/grid_core.dir/grab.cpp.o"
  "CMakeFiles/grid_core.dir/grab.cpp.o.d"
  "CMakeFiles/grid_core.dir/monitor.cpp.o"
  "CMakeFiles/grid_core.dir/monitor.cpp.o.d"
  "CMakeFiles/grid_core.dir/request.cpp.o"
  "CMakeFiles/grid_core.dir/request.cpp.o.d"
  "CMakeFiles/grid_core.dir/strategies.cpp.o"
  "CMakeFiles/grid_core.dir/strategies.cpp.o.d"
  "libgrid_core.a"
  "libgrid_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
