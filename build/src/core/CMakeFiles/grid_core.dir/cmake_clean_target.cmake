file(REMOVE_RECURSE
  "libgrid_core.a"
)
