
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rsl/alternatives.cpp" "src/rsl/CMakeFiles/grid_rsl.dir/alternatives.cpp.o" "gcc" "src/rsl/CMakeFiles/grid_rsl.dir/alternatives.cpp.o.d"
  "/root/repo/src/rsl/ast.cpp" "src/rsl/CMakeFiles/grid_rsl.dir/ast.cpp.o" "gcc" "src/rsl/CMakeFiles/grid_rsl.dir/ast.cpp.o.d"
  "/root/repo/src/rsl/attributes.cpp" "src/rsl/CMakeFiles/grid_rsl.dir/attributes.cpp.o" "gcc" "src/rsl/CMakeFiles/grid_rsl.dir/attributes.cpp.o.d"
  "/root/repo/src/rsl/editor.cpp" "src/rsl/CMakeFiles/grid_rsl.dir/editor.cpp.o" "gcc" "src/rsl/CMakeFiles/grid_rsl.dir/editor.cpp.o.d"
  "/root/repo/src/rsl/lexer.cpp" "src/rsl/CMakeFiles/grid_rsl.dir/lexer.cpp.o" "gcc" "src/rsl/CMakeFiles/grid_rsl.dir/lexer.cpp.o.d"
  "/root/repo/src/rsl/parser.cpp" "src/rsl/CMakeFiles/grid_rsl.dir/parser.cpp.o" "gcc" "src/rsl/CMakeFiles/grid_rsl.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simkit/CMakeFiles/grid_simkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
