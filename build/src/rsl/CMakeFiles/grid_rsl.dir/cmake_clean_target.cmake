file(REMOVE_RECURSE
  "libgrid_rsl.a"
)
