# Empty dependencies file for grid_rsl.
# This may be replaced when dependencies are built.
