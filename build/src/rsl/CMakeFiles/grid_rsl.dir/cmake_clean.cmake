file(REMOVE_RECURSE
  "CMakeFiles/grid_rsl.dir/alternatives.cpp.o"
  "CMakeFiles/grid_rsl.dir/alternatives.cpp.o.d"
  "CMakeFiles/grid_rsl.dir/ast.cpp.o"
  "CMakeFiles/grid_rsl.dir/ast.cpp.o.d"
  "CMakeFiles/grid_rsl.dir/attributes.cpp.o"
  "CMakeFiles/grid_rsl.dir/attributes.cpp.o.d"
  "CMakeFiles/grid_rsl.dir/editor.cpp.o"
  "CMakeFiles/grid_rsl.dir/editor.cpp.o.d"
  "CMakeFiles/grid_rsl.dir/lexer.cpp.o"
  "CMakeFiles/grid_rsl.dir/lexer.cpp.o.d"
  "CMakeFiles/grid_rsl.dir/parser.cpp.o"
  "CMakeFiles/grid_rsl.dir/parser.cpp.o.d"
  "libgrid_rsl.a"
  "libgrid_rsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_rsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
