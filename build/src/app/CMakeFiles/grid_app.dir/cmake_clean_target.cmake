file(REMOVE_RECURSE
  "libgrid_app.a"
)
