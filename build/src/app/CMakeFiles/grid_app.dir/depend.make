# Empty dependencies file for grid_app.
# This may be replaced when dependencies are built.
