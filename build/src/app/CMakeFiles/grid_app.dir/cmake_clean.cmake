file(REMOVE_RECURSE
  "CMakeFiles/grid_app.dir/behaviors.cpp.o"
  "CMakeFiles/grid_app.dir/behaviors.cpp.o.d"
  "CMakeFiles/grid_app.dir/failure.cpp.o"
  "CMakeFiles/grid_app.dir/failure.cpp.o.d"
  "libgrid_app.a"
  "libgrid_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
