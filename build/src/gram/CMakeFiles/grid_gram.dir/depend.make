# Empty dependencies file for grid_gram.
# This may be replaced when dependencies are built.
