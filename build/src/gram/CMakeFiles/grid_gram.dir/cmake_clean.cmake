file(REMOVE_RECURSE
  "CMakeFiles/grid_gram.dir/client.cpp.o"
  "CMakeFiles/grid_gram.dir/client.cpp.o.d"
  "CMakeFiles/grid_gram.dir/gatekeeper.cpp.o"
  "CMakeFiles/grid_gram.dir/gatekeeper.cpp.o.d"
  "CMakeFiles/grid_gram.dir/jobmanager.cpp.o"
  "CMakeFiles/grid_gram.dir/jobmanager.cpp.o.d"
  "CMakeFiles/grid_gram.dir/nis.cpp.o"
  "CMakeFiles/grid_gram.dir/nis.cpp.o.d"
  "CMakeFiles/grid_gram.dir/process.cpp.o"
  "CMakeFiles/grid_gram.dir/process.cpp.o.d"
  "CMakeFiles/grid_gram.dir/protocol.cpp.o"
  "CMakeFiles/grid_gram.dir/protocol.cpp.o.d"
  "libgrid_gram.a"
  "libgrid_gram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_gram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
