file(REMOVE_RECURSE
  "libgrid_gram.a"
)
