
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gram/client.cpp" "src/gram/CMakeFiles/grid_gram.dir/client.cpp.o" "gcc" "src/gram/CMakeFiles/grid_gram.dir/client.cpp.o.d"
  "/root/repo/src/gram/gatekeeper.cpp" "src/gram/CMakeFiles/grid_gram.dir/gatekeeper.cpp.o" "gcc" "src/gram/CMakeFiles/grid_gram.dir/gatekeeper.cpp.o.d"
  "/root/repo/src/gram/jobmanager.cpp" "src/gram/CMakeFiles/grid_gram.dir/jobmanager.cpp.o" "gcc" "src/gram/CMakeFiles/grid_gram.dir/jobmanager.cpp.o.d"
  "/root/repo/src/gram/nis.cpp" "src/gram/CMakeFiles/grid_gram.dir/nis.cpp.o" "gcc" "src/gram/CMakeFiles/grid_gram.dir/nis.cpp.o.d"
  "/root/repo/src/gram/process.cpp" "src/gram/CMakeFiles/grid_gram.dir/process.cpp.o" "gcc" "src/gram/CMakeFiles/grid_gram.dir/process.cpp.o.d"
  "/root/repo/src/gram/protocol.cpp" "src/gram/CMakeFiles/grid_gram.dir/protocol.cpp.o" "gcc" "src/gram/CMakeFiles/grid_gram.dir/protocol.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simkit/CMakeFiles/grid_simkit.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/grid_net.dir/DependInfo.cmake"
  "/root/repo/build/src/rsl/CMakeFiles/grid_rsl.dir/DependInfo.cmake"
  "/root/repo/build/src/gsi/CMakeFiles/grid_gsi.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/grid_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
