# Empty compiler generated dependencies file for grid_simkit.
# This may be replaced when dependencies are built.
