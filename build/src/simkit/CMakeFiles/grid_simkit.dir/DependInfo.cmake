
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simkit/codec.cpp" "src/simkit/CMakeFiles/grid_simkit.dir/codec.cpp.o" "gcc" "src/simkit/CMakeFiles/grid_simkit.dir/codec.cpp.o.d"
  "/root/repo/src/simkit/engine.cpp" "src/simkit/CMakeFiles/grid_simkit.dir/engine.cpp.o" "gcc" "src/simkit/CMakeFiles/grid_simkit.dir/engine.cpp.o.d"
  "/root/repo/src/simkit/log.cpp" "src/simkit/CMakeFiles/grid_simkit.dir/log.cpp.o" "gcc" "src/simkit/CMakeFiles/grid_simkit.dir/log.cpp.o.d"
  "/root/repo/src/simkit/rng.cpp" "src/simkit/CMakeFiles/grid_simkit.dir/rng.cpp.o" "gcc" "src/simkit/CMakeFiles/grid_simkit.dir/rng.cpp.o.d"
  "/root/repo/src/simkit/stats.cpp" "src/simkit/CMakeFiles/grid_simkit.dir/stats.cpp.o" "gcc" "src/simkit/CMakeFiles/grid_simkit.dir/stats.cpp.o.d"
  "/root/repo/src/simkit/status.cpp" "src/simkit/CMakeFiles/grid_simkit.dir/status.cpp.o" "gcc" "src/simkit/CMakeFiles/grid_simkit.dir/status.cpp.o.d"
  "/root/repo/src/simkit/time.cpp" "src/simkit/CMakeFiles/grid_simkit.dir/time.cpp.o" "gcc" "src/simkit/CMakeFiles/grid_simkit.dir/time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
