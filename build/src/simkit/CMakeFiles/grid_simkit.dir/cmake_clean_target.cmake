file(REMOVE_RECURSE
  "libgrid_simkit.a"
)
