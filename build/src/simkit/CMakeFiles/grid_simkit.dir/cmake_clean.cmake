file(REMOVE_RECURSE
  "CMakeFiles/grid_simkit.dir/codec.cpp.o"
  "CMakeFiles/grid_simkit.dir/codec.cpp.o.d"
  "CMakeFiles/grid_simkit.dir/engine.cpp.o"
  "CMakeFiles/grid_simkit.dir/engine.cpp.o.d"
  "CMakeFiles/grid_simkit.dir/log.cpp.o"
  "CMakeFiles/grid_simkit.dir/log.cpp.o.d"
  "CMakeFiles/grid_simkit.dir/rng.cpp.o"
  "CMakeFiles/grid_simkit.dir/rng.cpp.o.d"
  "CMakeFiles/grid_simkit.dir/stats.cpp.o"
  "CMakeFiles/grid_simkit.dir/stats.cpp.o.d"
  "CMakeFiles/grid_simkit.dir/status.cpp.o"
  "CMakeFiles/grid_simkit.dir/status.cpp.o.d"
  "CMakeFiles/grid_simkit.dir/time.cpp.o"
  "CMakeFiles/grid_simkit.dir/time.cpp.o.d"
  "libgrid_simkit.a"
  "libgrid_simkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_simkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
