file(REMOVE_RECURSE
  "../bench/ablate_pipelining"
  "../bench/ablate_pipelining.pdb"
  "CMakeFiles/ablate_pipelining.dir/ablate_pipelining.cpp.o"
  "CMakeFiles/ablate_pipelining.dir/ablate_pipelining.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_pipelining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
