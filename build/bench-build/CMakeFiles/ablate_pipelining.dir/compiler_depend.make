# Empty compiler generated dependencies file for ablate_pipelining.
# This may be replaced when dependencies are built.
