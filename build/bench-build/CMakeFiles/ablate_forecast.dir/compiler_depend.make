# Empty compiler generated dependencies file for ablate_forecast.
# This may be replaced when dependencies are built.
