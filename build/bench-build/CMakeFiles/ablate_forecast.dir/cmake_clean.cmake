file(REMOVE_RECURSE
  "../bench/ablate_forecast"
  "../bench/ablate_forecast.pdb"
  "CMakeFiles/ablate_forecast.dir/ablate_forecast.cpp.o"
  "CMakeFiles/ablate_forecast.dir/ablate_forecast.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
