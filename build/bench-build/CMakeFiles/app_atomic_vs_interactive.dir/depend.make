# Empty dependencies file for app_atomic_vs_interactive.
# This may be replaced when dependencies are built.
