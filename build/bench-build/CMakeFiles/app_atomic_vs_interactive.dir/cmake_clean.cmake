file(REMOVE_RECURSE
  "../bench/app_atomic_vs_interactive"
  "../bench/app_atomic_vs_interactive.pdb"
  "CMakeFiles/app_atomic_vs_interactive.dir/app_atomic_vs_interactive.cpp.o"
  "CMakeFiles/app_atomic_vs_interactive.dir/app_atomic_vs_interactive.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_atomic_vs_interactive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
