file(REMOVE_RECURSE
  "../bench/fig2_gram_latency"
  "../bench/fig2_gram_latency.pdb"
  "CMakeFiles/fig2_gram_latency.dir/fig2_gram_latency.cpp.o"
  "CMakeFiles/fig2_gram_latency.dir/fig2_gram_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_gram_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
