# Empty dependencies file for ablate_reservation.
# This may be replaced when dependencies are built.
