file(REMOVE_RECURSE
  "../bench/fig5_timeline"
  "../bench/fig5_timeline.pdb"
  "CMakeFiles/fig5_timeline.dir/fig5_timeline.cpp.o"
  "CMakeFiles/fig5_timeline.dir/fig5_timeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
