# Empty compiler generated dependencies file for ablate_ordering.
# This may be replaced when dependencies are built.
