file(REMOVE_RECURSE
  "../bench/ablate_ordering"
  "../bench/ablate_ordering.pdb"
  "CMakeFiles/ablate_ordering.dir/ablate_ordering.cpp.o"
  "CMakeFiles/ablate_ordering.dir/ablate_ordering.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
