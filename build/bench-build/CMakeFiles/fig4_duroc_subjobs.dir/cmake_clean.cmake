file(REMOVE_RECURSE
  "../bench/fig4_duroc_subjobs"
  "../bench/fig4_duroc_subjobs.pdb"
  "CMakeFiles/fig4_duroc_subjobs.dir/fig4_duroc_subjobs.cpp.o"
  "CMakeFiles/fig4_duroc_subjobs.dir/fig4_duroc_subjobs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_duroc_subjobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
