# Empty compiler generated dependencies file for fig4_duroc_subjobs.
# This may be replaced when dependencies are built.
