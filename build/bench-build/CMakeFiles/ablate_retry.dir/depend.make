# Empty dependencies file for ablate_retry.
# This may be replaced when dependencies are built.
