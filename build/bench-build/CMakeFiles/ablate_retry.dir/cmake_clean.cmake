file(REMOVE_RECURSE
  "../bench/ablate_retry"
  "../bench/ablate_retry.pdb"
  "CMakeFiles/ablate_retry.dir/ablate_retry.cpp.o"
  "CMakeFiles/ablate_retry.dir/ablate_retry.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_retry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
