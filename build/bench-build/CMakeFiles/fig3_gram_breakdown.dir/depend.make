# Empty dependencies file for fig3_gram_breakdown.
# This may be replaced when dependencies are built.
