file(REMOVE_RECURSE
  "../bench/fig3_gram_breakdown"
  "../bench/fig3_gram_breakdown.pdb"
  "CMakeFiles/fig3_gram_breakdown.dir/fig3_gram_breakdown.cpp.o"
  "CMakeFiles/fig3_gram_breakdown.dir/fig3_gram_breakdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_gram_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
