# Empty dependencies file for app_large_scale.
# This may be replaced when dependencies are built.
