file(REMOVE_RECURSE
  "../bench/app_large_scale"
  "../bench/app_large_scale.pdb"
  "CMakeFiles/app_large_scale.dir/app_large_scale.cpp.o"
  "CMakeFiles/app_large_scale.dir/app_large_scale.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_large_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
