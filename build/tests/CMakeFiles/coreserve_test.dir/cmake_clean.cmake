file(REMOVE_RECURSE
  "CMakeFiles/coreserve_test.dir/coreserve_test.cpp.o"
  "CMakeFiles/coreserve_test.dir/coreserve_test.cpp.o.d"
  "coreserve_test"
  "coreserve_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coreserve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
