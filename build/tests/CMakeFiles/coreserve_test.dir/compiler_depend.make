# Empty compiler generated dependencies file for coreserve_test.
# This may be replaced when dependencies are built.
