
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/retry_test.cpp" "tests/CMakeFiles/retry_test.dir/retry_test.cpp.o" "gcc" "tests/CMakeFiles/retry_test.dir/retry_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/testbed/CMakeFiles/grid_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/grid_app.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/grid_config.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/grid_core.dir/DependInfo.cmake"
  "/root/repo/build/src/info/CMakeFiles/grid_info.dir/DependInfo.cmake"
  "/root/repo/build/src/gram/CMakeFiles/grid_gram.dir/DependInfo.cmake"
  "/root/repo/build/src/gsi/CMakeFiles/grid_gsi.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/grid_net.dir/DependInfo.cmake"
  "/root/repo/build/src/rsl/CMakeFiles/grid_rsl.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/grid_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/simkit/CMakeFiles/grid_simkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
