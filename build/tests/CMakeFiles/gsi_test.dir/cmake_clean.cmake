file(REMOVE_RECURSE
  "CMakeFiles/gsi_test.dir/gsi_test.cpp.o"
  "CMakeFiles/gsi_test.dir/gsi_test.cpp.o.d"
  "gsi_test"
  "gsi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
