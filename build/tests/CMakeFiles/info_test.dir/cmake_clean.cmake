file(REMOVE_RECURSE
  "CMakeFiles/info_test.dir/info_test.cpp.o"
  "CMakeFiles/info_test.dir/info_test.cpp.o.d"
  "info_test"
  "info_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/info_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
