file(REMOVE_RECURSE
  "CMakeFiles/advance_reservation.dir/advance_reservation.cpp.o"
  "CMakeFiles/advance_reservation.dir/advance_reservation.cpp.o.d"
  "advance_reservation"
  "advance_reservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advance_reservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
