# Empty compiler generated dependencies file for advance_reservation.
# This may be replaced when dependencies are built.
