file(REMOVE_RECURSE
  "CMakeFiles/gridmpi_app.dir/gridmpi_app.cpp.o"
  "CMakeFiles/gridmpi_app.dir/gridmpi_app.cpp.o.d"
  "gridmpi_app"
  "gridmpi_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridmpi_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
