# Empty dependencies file for gridmpi_app.
# This may be replaced when dependencies are built.
