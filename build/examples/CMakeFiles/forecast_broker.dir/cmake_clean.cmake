file(REMOVE_RECURSE
  "CMakeFiles/forecast_broker.dir/forecast_broker.cpp.o"
  "CMakeFiles/forecast_broker.dir/forecast_broker.cpp.o.d"
  "forecast_broker"
  "forecast_broker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forecast_broker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
