# Empty dependencies file for forecast_broker.
# This may be replaced when dependencies are built.
